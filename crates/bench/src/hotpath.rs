//! Shared machinery of the hot-path benchmarks: the workload set, the
//! pre-overhaul baseline implementation, and a counting global allocator.
//!
//! Both `hotpath_bench` (the full microbenchmark) and `bench_gate` (the
//! CI regression gate) drive this module, so the gate replays exactly
//! the measurements the committed `BENCH_*.json` trajectory was recorded
//! with.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use xag_affine::AffineClassifier;
use xag_cuts::{enumerate_cuts_for, CutParams};
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::Xag;
use xag_tt::Tt;

use crate::harness::{black_box, BenchGroup};
use crate::BenchRecord;

/// A [`System`] wrapper that counts allocations while armed. Counting is
/// off by default — one relaxed load per allocation — so setup and
/// reporting noise stay out of the window; [`count_allocs`] arms it
/// around exactly the call under test.
pub struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed, returning its heap
/// allocation count alongside its result. Not reentrant; the bench
/// binaries are single-threaded while measuring.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let out = f();
    COUNTING.store(false, Ordering::Relaxed);
    (ALLOCS.load(Ordering::Relaxed), out)
}

/// One named benchmark network.
pub struct Workload {
    /// Stable row name (part of the `BENCH_*.json` record names).
    pub name: &'static str,
    /// The network under measurement.
    pub xag: Xag,
}

/// The hot-path workload set: two seeded fuzz networks (wide and deep), a
/// reduced-lane Keccak-f permutation, and AES-128. Deterministic — the
/// regression gate relies on the cut counts being reproducible.
pub fn workloads() -> Vec<Workload> {
    let fuzz_wide = FuzzConfig {
        inputs: 24,
        gates: 1500,
        outputs: 8,
        ..FuzzConfig::default()
    };
    let fuzz_deep = FuzzConfig {
        inputs: 16,
        gates: 1500,
        outputs: 8,
        depth_bias: 0.85,
        ..FuzzConfig::default()
    };
    vec![
        Workload {
            name: "fuzz_wide",
            xag: random_xag(&fuzz_wide, 7),
        },
        Workload {
            name: "fuzz_deep",
            xag: random_xag(&fuzz_deep, 7),
        },
        Workload {
            name: "keccak_f200",
            xag: xag_circuits::keccak::keccak_f(8),
        },
        Workload {
            name: "aes128",
            xag: xag_circuits::aes::aes128(false),
        },
    ]
}

/// The pre-overhaul hot path, reimplemented over the public network API:
/// per-node `Vec<Cut>` sets behind a `HashMap`, heap-allocated leaf
/// vectors, clone-the-fanin-sets merging, and a recursive per-cut cone
/// traversal with a fresh `HashMap` memo per call. This is the baseline
/// the `speedup` rows measure against; the differential tests in
/// `crates/cuts/tests/differential.rs` pin the *results* of the two
/// implementations to each other.
pub mod legacy {
    use std::collections::HashMap;

    use xag_cuts::CutParams;
    use xag_network::{NodeId, NodeKind, Xag};
    use xag_tt::Tt;

    /// The old cut representation: heap-allocated sorted leaf vector plus
    /// the 64-bit subset signature.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Cut {
        /// Sorted, deduplicated leaf nodes.
        pub leaves: Vec<NodeId>,
        /// `1 << (leaf % 64)` union over the leaves.
        pub signature: u64,
    }

    impl Cut {
        /// Creates a cut from leaf ids (sorted and deduplicated here).
        pub fn new(mut leaves: Vec<NodeId>) -> Self {
            leaves.sort_unstable();
            leaves.dedup();
            let signature = leaves.iter().fold(0u64, |s, &l| s | 1 << (l % 64));
            Self { leaves, signature }
        }

        /// True iff `self`'s leaves are a subset of `other`'s.
        pub fn dominates(&self, other: &Cut) -> bool {
            if self.leaves.len() > other.leaves.len() || self.signature & !other.signature != 0 {
                return false;
            }
            self.leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
        }

        /// Union of two cuts, allocating a fresh leaf vector.
        pub fn merge(&self, other: &Cut) -> Cut {
            let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
            leaves.extend_from_slice(&self.leaves);
            leaves.extend_from_slice(&other.leaves);
            Cut::new(leaves)
        }
    }

    /// The old `enumerate_cuts`, including its original loose early size
    /// filter (`cut_size + 8`).
    pub fn enumerate(xag: &Xag, order: &[NodeId], params: &CutParams) -> HashMap<NodeId, Vec<Cut>> {
        let mut cuts: HashMap<NodeId, Vec<Cut>> = HashMap::new();
        cuts.insert(0, vec![Cut::new(vec![])]);
        for i in 0..xag.num_inputs() {
            let n = xag.input_signal(i).node();
            cuts.insert(n, vec![Cut::new(vec![n])]);
        }
        for &n in order {
            let (f0, f1) = xag.fanins(n);
            let set0 = cuts.get(&f0.node()).cloned().unwrap_or_default();
            let set1 = cuts.get(&f1.node()).cloned().unwrap_or_default();
            let mut merged: Vec<Cut> = Vec::new();
            for c0 in &set0 {
                for c1 in &set1 {
                    if (c0.signature | c1.signature).count_ones() as usize > params.cut_size + 8 {
                        continue;
                    }
                    let cut = c0.merge(c1);
                    if cut.leaves.len() > params.cut_size {
                        continue;
                    }
                    if merged.iter().any(|c| c.dominates(&cut)) {
                        continue;
                    }
                    merged.retain(|c| !cut.dominates(c));
                    merged.push(cut);
                }
            }
            merged.sort_by_key(|c| c.leaves.len());
            merged.truncate(params.cut_limit);
            merged.push(Cut::new(vec![n]));
            cuts.insert(n, merged);
        }
        cuts
    }

    /// The old `Xag::cone_tt`: a fresh `HashMap` memo and a recursive
    /// cone walk per call.
    pub fn cone_tt(xag: &Xag, root: NodeId, leaves: &[NodeId]) -> Option<Tt> {
        if leaves.len() > 6 {
            return None;
        }
        let nvars = leaves.len();
        let mut memo: HashMap<NodeId, Tt> = HashMap::new();
        for (i, &l) in leaves.iter().enumerate() {
            memo.insert(l, Tt::projection(i, nvars.max(1)));
        }
        memo.insert(0, Tt::zero(nvars.max(1)));
        cone_tt_rec(xag, root, &mut memo)
    }

    fn cone_tt_rec(xag: &Xag, n: NodeId, memo: &mut HashMap<NodeId, Tt>) -> Option<Tt> {
        if let Some(&t) = memo.get(&n) {
            return Some(t);
        }
        if !xag.is_gate(n) {
            return None;
        }
        let (f0, f1) = xag.fanins(n);
        let t0 = cone_tt_rec(xag, f0.node(), memo)?;
        let t1 = cone_tt_rec(xag, f1.node(), memo)?;
        let t0 = if f0.is_complement() { !t0 } else { t0 };
        let t1 = if f1.is_complement() { !t1 } else { t1 };
        let t = match xag.kind(n) {
            NodeKind::And => t0 & t1,
            NodeKind::Xor => t0 ^ t1,
            _ => unreachable!("order yields gates only"),
        };
        memo.insert(n, t);
        Some(t)
    }
}

/// Runs the full hot-path measurement over [`workloads`], printing the
/// benchmark report and returning the `BENCH_*.json` records. This is
/// the single source of the `hotpath` trajectory rows: the
/// `hotpath_bench` binary records them, and `bench_gate` replays them
/// against the committed file.
///
/// * `samples` — timed iterations per measurement (`MC_BENCH_SAMPLES`
///   still overrides).
/// * `alloc_check` — when set, *assert* the allocation guarantee: the
///   sweep's heap allocation count must stay O(log) in the number of
///   cuts (vector-growth doublings only, zero allocations per cut).
///
/// # Panics
///
/// Panics when `alloc_check` is set and the allocation budget is
/// exceeded.
pub fn run_hotpath(samples: usize, alloc_check: bool) -> Vec<BenchRecord> {
    let params = CutParams::default();
    let mut records: Vec<BenchRecord> = Vec::new();
    let record = |records: &mut Vec<BenchRecord>,
                  name: String,
                  size_before: usize,
                  size_after: usize,
                  wall: f64| {
        records.push(BenchRecord {
            bench: "hotpath".to_string(),
            name,
            size_before,
            size_after,
            depth_before: 0,
            depth_after: 0,
            mc_before: 0,
            mc_after: 0,
            wall_s: wall,
            threads: 1,
            flow: String::new(),
        });
    };

    for w in workloads() {
        let xag = &w.xag;
        let order = xag.live_gates();
        let gates = order.len();
        let mut group = BenchGroup::new(w.name);
        group.sample_size(samples);

        // Current hot path: one fused sweep computes every cut and its
        // function.
        let sets = enumerate_cuts_for(xag, &order, &params);
        let total_cuts = sets.total();
        let t_new = group.bench_function_timed("enum", || {
            black_box(enumerate_cuts_for(xag, &order, &params).total())
        });
        record(
            &mut records,
            format!("enum/{}", w.name),
            gates,
            total_cuts,
            t_new.as_secs_f64(),
        );

        // Legacy baseline: allocating enumeration, then one recursive
        // cone traversal per non-trivial cut.
        let t_legacy = group.bench_function_timed("enum_legacy", || {
            let cuts = legacy::enumerate(xag, &order, &params);
            let mut functions = 0usize;
            for &n in &order {
                for cut in &cuts[&n] {
                    if cut.leaves.len() == 1 && cut.leaves[0] == n {
                        continue;
                    }
                    if legacy::cone_tt(xag, n, &cut.leaves).is_some() {
                        functions += 1;
                    }
                }
            }
            black_box(functions)
        });
        record(
            &mut records,
            format!("enum_legacy/{}", w.name),
            gates,
            total_cuts,
            t_legacy.as_secs_f64(),
        );

        group.report_ratio("speedup (legacy/new)", t_legacy, t_new);
        let ratio = if t_new.as_nanos() > 0 {
            t_legacy.as_secs_f64() / t_new.as_secs_f64()
        } else {
            1.0
        };
        record(
            &mut records,
            format!("speedup/{}", w.name),
            gates,
            total_cuts,
            ratio,
        );

        // Allocation profile of the sweep: the dense arena allocates only
        // for vector growth — O(log cuts) doublings — never per cut.
        let (allocs, _) = count_allocs(|| enumerate_cuts_for(xag, &order, &params).total());
        println!(
            "  {:<32} {} heap allocations for {} cuts",
            format!("{}/allocs", w.name),
            allocs,
            total_cuts
        );
        record(
            &mut records,
            format!("allocs/{}", w.name),
            total_cuts,
            allocs as usize,
            0.0,
        );
        if alloc_check {
            let budget = 64 + 4 * (usize::BITS - total_cuts.leading_zeros()) as u64;
            assert!(
                allocs <= budget,
                "{}: enumerate_cuts_for made {allocs} heap allocations for \
                 {total_cuts} cuts (budget {budget}) — the per-cut \
                 allocation-free guarantee regressed",
                w.name
            );
        }

        // Classification: cold (beam/exact search dominates) and warm
        // (pure cache-hit path — truth-table hashing) over the ≤4-input
        // cut functions.
        let mut small_fns: Vec<Tt> = Vec::new();
        for (n, cuts) in sets.iter() {
            let tts = sets.functions_of(n);
            for (cut, &tt) in cuts.iter().zip(tts) {
                if (2..=4).contains(&cut.size()) {
                    small_fns.push(tt);
                }
            }
        }
        let t_classify = group.bench_function_timed("classify_cold", || {
            let mut cls = AffineClassifier::new();
            for &tt in &small_fns {
                black_box(cls.classify(tt).representative);
            }
        });
        record(
            &mut records,
            format!("classify_cold/{}", w.name),
            gates,
            small_fns.len(),
            t_classify.as_secs_f64(),
        );
        let mut warm = AffineClassifier::new();
        for &tt in &small_fns {
            let _ = warm.classify(tt);
        }
        let t_warm = group.bench_function_timed("classify_warm", || {
            for &tt in &small_fns {
                black_box(warm.classify(tt).representative);
            }
        });
        record(
            &mut records,
            format!("classify_warm/{}", w.name),
            gates,
            small_fns.len(),
            t_warm.as_secs_f64(),
        );
        group.finish();
    }

    // Profiler overhead: one sequential McRewrite round over fuzz_wide
    // with the phase profiler on vs off. Phases fire at pass, round, and
    // node granularity — never per cut — so the two runs must be within
    // noise of each other; the trajectory keeps the off/on ratio (~1.0)
    // and the gate holds it to the same floor as the other ratio rows. A
    // profiler change that starts costing real time at pass granularity
    // collapses the ratio and fails the gate.
    {
        use xag_mc::{McRewrite, OptContext, Pass};
        let w = workloads()
            .into_iter()
            .find(|w| w.name == "fuzz_wide")
            .expect("fuzz_wide workload");
        let gates = w.xag.live_gates().len();
        let mut group = BenchGroup::new("prof_overhead");
        group.sample_size(samples);
        let pass = McRewrite::new();
        let mut ctx = OptContext::new();
        // Warm the classifier cache so neither measurement pays the
        // cold-start beam search.
        let _ = pass.run(&mut w.xag.clone(), &mut ctx);
        mc_obs::prof::set_enabled(true);
        let t_on = group.bench_function_timed("round_prof_on", || {
            let mut xag = w.xag.clone();
            black_box(pass.run(&mut xag, &mut ctx).rewrites_applied)
        });
        mc_obs::prof::set_enabled(false);
        let t_off = group.bench_function_timed("round_prof_off", || {
            let mut xag = w.xag.clone();
            black_box(pass.run(&mut xag, &mut ctx).rewrites_applied)
        });
        mc_obs::prof::set_enabled(true);
        mc_obs::prof::reset();
        group.report_ratio("overhead (off/on)", t_off, t_on);
        let ratio = if t_on.as_nanos() > 0 {
            t_off.as_secs_f64() / t_on.as_secs_f64()
        } else {
            1.0
        };
        record(
            &mut records,
            "prof_overhead/fuzz_wide".to_string(),
            gates,
            0,
            ratio,
        );
        group.finish();
    }

    // Geometric mean of the per-workload speedups — the headline number
    // of the perf trajectory.
    let speedups: Vec<f64> = records
        .iter()
        .filter(|r| r.name.starts_with("speedup/"))
        .map(|r| r.wall_s)
        .collect();
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("geomean speedup (legacy/new): {geomean:.2}x");
    record(&mut records, "speedup/geomean".to_string(), 0, 0, geomean);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counter_counts_and_disarms() {
        let (allocs, v) = count_allocs(|| vec![1u64, 2, 3]);
        assert!(allocs >= 1, "a Vec allocation must be counted");
        assert_eq!(v.len(), 3);
        let before = ALLOCS.load(Ordering::Relaxed);
        // A real heap allocation: the counter must not see it.
        let _noise = Box::new([0u8; 64]);
        assert_eq!(
            ALLOCS.load(Ordering::Relaxed),
            before,
            "counter must be disarmed outside count_allocs"
        );
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = workloads();
        let b = workloads();
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(wa.xag.num_gates(), wb.xag.num_gates());
        }
    }
}
