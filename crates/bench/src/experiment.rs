//! The shared experiment flow and table formatting.
//!
//! The flow is expressed with the pass-pipeline API of [`xag_mc`]: a
//! size-rewriting [`Pipeline`] produces the "Initial" network (the paper
//! applies an ABC script), a single [`McRewrite`] pass gives the "One
//! round" columns, and [`Pipeline::paper_flow`] runs until convergence.
//! All three stages share one [`OptContext`], so the representative
//! database amortizes across stages — and across benchmarks, when the
//! caller passes the same context to [`run_flow_with`] repeatedly.

use std::time::Instant;

use xag_mc::{McRewrite, OptContext, Pass, Pipeline, RewriteParams};
use xag_network::{equiv, write_verilog, Xag};

/// Gate counts and timings for one benchmark through the full flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// AND/XOR counts after the size-optimization baseline ("Initial").
    pub initial: (usize, usize),
    /// Counts after one MC-rewriting round, with wall-clock seconds.
    pub one_round: (usize, usize, f64),
    /// Counts after rewriting until convergence, with wall-clock seconds
    /// and the number of rounds used.
    pub converged: (usize, usize, f64, usize),
    /// True if the post-optimization network was checked equivalent to the
    /// input (exhaustively ≤ 16 inputs, by random simulation otherwise).
    pub verified: bool,
    /// The converged network (cleaned), so callers can derive metrics the
    /// count columns do not carry — total size, multiplicative depth —
    /// e.g. for the `--json` records of the bench binaries.
    pub optimized: Xag,
    /// The parallel-engine comparison, present when the flow ran with
    /// `threads > 1` (see [`run_flow_threads`]).
    pub parallel: Option<ParallelResult>,
}

/// Single- vs multi-thread comparison of the sharded rewriting engine on
/// one benchmark: the same until-convergence flow, run once with one
/// worker and once with `threads` workers. The engine is deterministic
/// across thread counts, so the two runs must agree bit for bit
/// (`identical`) and the ratio of their times is a pure speedup.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Worker count of the multi-threaded run.
    pub threads: usize,
    /// AND/XOR counts after the parallel convergence flow.
    pub counts: (usize, usize),
    /// Wall-clock seconds of the 1-worker run of the parallel engine.
    pub single_time: f64,
    /// Wall-clock seconds of the `threads`-worker run.
    pub multi_time: f64,
    /// Rounds used by the parallel convergence flow.
    pub rounds: usize,
    /// True iff the multi-thread network is bit-identical to the
    /// single-thread network (byte-equal exported netlists: same gates,
    /// wiring, polarity, and order) — the engine's contract.
    pub identical: bool,
    /// True iff the parallel result was checked equivalent to the input.
    pub verified: bool,
}

impl ParallelResult {
    /// Wall-clock speedup of `threads` workers over one worker.
    pub fn speedup(&self) -> f64 {
        if self.multi_time > 0.0 {
            self.single_time / self.multi_time
        } else {
            1.0
        }
    }
}

impl FlowResult {
    /// One-round improvement over the initial AND count, in percent.
    pub fn one_round_impr(&self) -> f64 {
        improvement(self.initial.0, self.one_round.0)
    }

    /// Convergence improvement over the initial AND count, in percent.
    pub fn converged_impr(&self) -> f64 {
        improvement(self.initial.0, self.converged.0)
    }
}

fn improvement(before: usize, after: usize) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (before.saturating_sub(after)) as f64 / before as f64
    }
}

/// Runs the paper's experimental flow on one circuit with a fresh
/// [`OptContext`]. See [`run_flow_with`].
pub fn run_flow(xag: &Xag, baseline_rounds: usize, max_mc_rounds: usize) -> FlowResult {
    run_flow_with(&mut OptContext::new(), xag, baseline_rounds, max_mc_rounds)
}

/// [`run_flow_with`] plus — when `threads > 1` — a single- vs
/// multi-thread comparison of the sharded parallel engine on the
/// convergence stage, reported in [`FlowResult::parallel`].
pub fn run_flow_threads(
    ctx: &mut OptContext,
    xag: &Xag,
    baseline_rounds: usize,
    max_mc_rounds: usize,
    threads: usize,
) -> FlowResult {
    let mut result = run_flow_with(ctx, xag, baseline_rounds, max_mc_rounds);
    if threads <= 1 {
        return result;
    }
    let reference = xag.cleanup();

    // Re-create the "Initial" network the sequential stages started from.
    let mut work = xag.cleanup();
    if baseline_rounds > 0 {
        Pipeline::from_params(&RewriteParams {
            max_rounds: baseline_rounds,
            ..RewriteParams::size_baseline()
        })
        .run(&mut work, ctx);
        work = work.cleanup();
    }

    let mut single = work.cleanup();
    let t0 = Instant::now();
    Pipeline::paper_flow()
        .max_rounds(max_mc_rounds)
        .run_parallel(&mut single, ctx, 1);
    let single_time = t0.elapsed().as_secs_f64();

    let mut multi = work.cleanup();
    let t1 = Instant::now();
    let stats = Pipeline::paper_flow()
        .max_rounds(max_mc_rounds)
        .run_parallel(&mut multi, ctx, threads);
    let multi_time = t1.elapsed().as_secs_f64();

    // Bit-identity, not just equal counts: byte-compare the exported
    // netlists (same gates, wiring, polarity, and order) so a determinism
    // regression that preserves totals still raises [DIVERGED].
    let netlist = |x: &Xag| -> Vec<u8> {
        let mut buf = Vec::new();
        write_verilog(&x.cleanup(), "m", &mut buf).expect("in-memory write");
        buf
    };
    let identical = netlist(&multi) == netlist(&single);
    let verified = equiv(&reference, &multi.cleanup(), 0xDAC19, 64);
    result.parallel = Some(ParallelResult {
        threads,
        counts: (multi.num_ands(), multi.num_xors()),
        single_time,
        multi_time,
        rounds: stats.num_rounds(),
        identical,
        verified,
    });
    result
}

/// Runs the paper's experimental flow on one circuit.
///
/// * `ctx` — the shared optimization context; pass the same one for a
///   whole suite so later benchmarks reuse the representatives earlier
///   ones synthesized.
/// * `baseline_rounds` — rounds of generic size rewriting used to produce
///   the "Initial" network (the paper applies its ABC script 10 times; one
///   or two rounds of our unit-cost rewriter reach its fixpoint on the
///   generated circuits).
/// * `max_mc_rounds` — cap for the until-convergence pipeline (use a small
///   number for quick runs of the heavy crypto benchmarks).
pub fn run_flow_with(
    ctx: &mut OptContext,
    xag: &Xag,
    baseline_rounds: usize,
    max_mc_rounds: usize,
) -> FlowResult {
    let reference = xag.cleanup();

    // "Initial": generic size optimization (the schedule McOptimizer's
    // size baseline ran before the pass refactor).
    let mut work = xag.cleanup();
    if baseline_rounds > 0 {
        Pipeline::from_params(&RewriteParams {
            max_rounds: baseline_rounds,
            ..RewriteParams::size_baseline()
        })
        .run(&mut work, ctx);
        work = work.cleanup();
    }
    let initial = (work.num_ands(), work.num_xors());

    // "One round": a single pass with the paper's 6-cut parameters.
    let one_pass = McRewrite::new();
    let t0 = Instant::now();
    let mut one = work.cleanup();
    one_pass.run(&mut one, ctx);
    let one_time = t0.elapsed().as_secs_f64();
    let one_round = (one.num_ands(), one.num_xors(), one_time);

    // "Repeat until convergence", from the same initial network.
    let mut conv = work.cleanup();
    let t1 = Instant::now();
    let stats = Pipeline::paper_flow()
        .max_rounds(max_mc_rounds)
        .run(&mut conv, ctx);
    let conv_time = t1.elapsed().as_secs_f64();
    let converged = (
        conv.num_ands(),
        conv.num_xors(),
        conv_time,
        stats.num_rounds(),
    );

    let conv_clean = conv.cleanup();
    let verified = equiv(&reference, &conv_clean, 0xDAC19, 64);

    FlowResult {
        initial,
        one_round,
        converged,
        verified,
        optimized: conv_clean,
        parallel: None,
    }
}

/// One printable row of Table 1 / Table 2.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// The flow results.
    pub flow: FlowResult,
}

impl TableRow {
    /// Formats the row in the layout of the paper's tables. When the flow
    /// carries a parallel comparison, a `parN:` section with the
    /// single-/multi-thread times and the speedup is appended.
    pub fn format(&self) -> String {
        let f = &self.flow;
        let mut row = format!(
            "{:<28} {:>6} {:>6} | {:>7} {:>7} | {:>7} {:>7} {:>8.2} {:>5.0}% | {:>7} {:>7} {:>8.2} {:>5.0}% {}",
            self.name,
            self.inputs,
            self.outputs,
            f.initial.0,
            f.initial.1,
            f.one_round.0,
            f.one_round.1,
            f.one_round.2,
            f.one_round_impr(),
            f.converged.0,
            f.converged.1,
            f.converged.2,
            f.converged_impr(),
            if f.verified { "" } else { " [UNVERIFIED]" },
        );
        if let Some(p) = &f.parallel {
            row.push_str(&format!(
                " | par{}: {} AND, 1t {:.2}s, {}t {:.2}s, {:.2}x{}{}",
                p.threads,
                p.counts.0,
                p.single_time,
                p.threads,
                p.multi_time,
                p.speedup(),
                if p.identical { "" } else { " [DIVERGED]" },
                if p.verified { "" } else { " [UNVERIFIED]" },
            ));
        }
        row
    }

    /// The table header matching [`TableRow::format`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>6} {:>6} | {:>7} {:>7} | {:>7} {:>7} {:>8} {:>6} | {:>7} {:>7} {:>8} {:>6}",
            "Name",
            "In",
            "Out",
            "AND",
            "XOR",
            "AND",
            "XOR",
            "time[s]",
            "impr.",
            "AND",
            "XOR",
            "time[s]",
            "impr."
        )
    }
}

/// Normalized geometric mean of `after/before` AND ratios (the paper's
/// summary rows); returns 1.0 for an empty set.
pub fn normalized_geomean(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(before, after)| {
            let b = before.max(1) as f64;
            let a = after.max(1) as f64;
            (a / b).ln()
        })
        .sum();
    (log_sum / pairs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_circuits::arith::{add_ripple, input_word, output_word};
    use xag_network::Signal;

    #[test]
    fn flow_on_small_adder_reaches_one_and_per_bit() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 8);
        let b = input_word(&mut x, 8);
        let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
        output_word(&mut x, &s);
        x.output(c);
        let flow = run_flow(&x, 2, 50);
        assert!(flow.verified);
        // Boyar–Peralta: an n-bit adder needs exactly n ANDs.
        assert_eq!(flow.converged.0, 8, "8-bit adder should reach 8 ANDs");
        assert!(flow.converged_impr() > 50.0);
    }

    #[test]
    fn shared_context_amortizes_across_flows() {
        let mut ctx = OptContext::new();
        let build = || {
            let mut x = Xag::new();
            let a = input_word(&mut x, 4);
            let b = input_word(&mut x, 4);
            let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
            output_word(&mut x, &s);
            x.output(c);
            x
        };
        let first = run_flow_with(&mut ctx, &build(), 1, 20);
        let db_after_first = ctx.db_size();
        let second = run_flow_with(&mut ctx, &build(), 1, 20);
        assert_eq!(first.converged.0, second.converged.0);
        // The identical circuit cannot need new representatives.
        assert_eq!(ctx.db_size(), db_after_first);
    }

    #[test]
    fn geomean_behaves() {
        assert!((normalized_geomean(&[]) - 1.0).abs() < 1e-12);
        let g = normalized_geomean(&[(100, 50), (100, 50)]);
        assert!((g - 0.5).abs() < 1e-9);
        let g2 = normalized_geomean(&[(100, 25), (100, 100)]);
        assert!((g2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_formatting_is_stable() {
        let row = TableRow {
            name: "adder".into(),
            inputs: 64,
            outputs: 33,
            flow: FlowResult {
                initial: (96, 64),
                one_round: (40, 150, 0.5),
                converged: (32, 160, 1.2, 3),
                verified: true,
                optimized: Xag::new(),
                parallel: None,
            },
        };
        let s = row.format();
        assert!(s.contains("adder"));
        assert!(s.contains("96"));
        assert!(!s.contains("UNVERIFIED"));
        assert!(!s.contains("par"));
        assert!(TableRow::header().contains("impr."));
    }

    #[test]
    fn parallel_flow_compares_thread_counts_bit_identically() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 6);
        let b = input_word(&mut x, 6);
        let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
        output_word(&mut x, &s);
        x.output(c);
        let mut ctx = OptContext::new();
        let flow = run_flow_threads(&mut ctx, &x, 1, 30, 4);
        let p = flow
            .parallel
            .clone()
            .expect("threads > 1 must fill the comparison");
        assert_eq!(p.threads, 4);
        assert!(p.identical, "thread count changed the result");
        assert!(p.verified);
        assert!(p.speedup() > 0.0);
        let row = TableRow {
            name: "adder6".into(),
            inputs: 12,
            outputs: 7,
            flow,
        };
        assert!(row.format().contains("par4:"));
    }
}
