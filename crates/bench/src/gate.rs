//! The bench-regression gate: compares a replayed benchmark run against
//! a committed `BENCH_*.json` trajectory file.
//!
//! The committed files record two kinds of numbers:
//!
//! * **deterministic results** — gate counts, multiplicative depths, cut
//!   totals, allocation counts. The engine is deterministic (same input,
//!   same flow, same result on any machine and thread count), so the gate
//!   compares these **exactly**; any drift is a correctness or quality
//!   regression, not noise;
//! * **wall-clock measurements** — absolute times and speedup ratios.
//!   These vary across machines, so the gate only rejects order-of-
//!   magnitude movement: a replayed time may not exceed the committed
//!   time by more than `wall_tolerance`×, and a replayed speedup ratio
//!   may not fall below the committed ratio divided by
//!   `ratio_tolerance`.
//!
//! The `bench_gate` binary replays a fast subset of the workloads,
//! matches rows by `(bench, name)`, and exits nonzero with one line per
//! violation — see its docs for the CI wiring.

use std::path::Path;

use mc_serve::json::{parse, Json};

use crate::harness::BenchRecord;

/// Reads a `BENCH_*.json` file (the [`crate::write_bench_json`] shape)
/// back into records.
///
/// # Errors
///
/// Returns an I/O error for unreadable files and `InvalidData` for
/// malformed JSON or records missing required fields.
pub fn read_bench_json(path: &Path) -> std::io::Result<Vec<BenchRecord>> {
    let text = std::fs::read_to_string(path)?;
    let invalid = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {what}", path.display()),
        )
    };
    let value = parse(&text).map_err(|e| invalid(&format!("malformed JSON ({e:?})")))?;
    let items = value.as_arr().ok_or_else(|| invalid("expected an array"))?;
    let mut records = Vec::with_capacity(items.len());
    for item in items {
        records.push(record_from_json(item).ok_or_else(|| invalid("malformed record"))?);
    }
    Ok(records)
}

fn record_from_json(v: &Json) -> Option<BenchRecord> {
    let str_field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
    let num_field = |key: &str| v.get(key).and_then(Json::as_u64).map(|n| n as usize);
    Some(BenchRecord {
        bench: str_field("bench")?,
        name: str_field("name")?,
        size_before: num_field("size_before")?,
        size_after: num_field("size_after")?,
        depth_before: num_field("depth_before")?,
        depth_after: num_field("depth_after")?,
        mc_before: num_field("mc_before")?,
        mc_after: num_field("mc_after")?,
        wall_s: v.get("wall_s").and_then(Json::as_f64)?,
        threads: num_field("threads")?,
        flow: str_field("flow")?,
    })
}

/// Tolerances for the wall-clock comparisons. Deterministic fields are
/// always compared exactly and take no tolerance.
#[derive(Debug, Clone, Copy)]
pub struct GateTolerance {
    /// A replayed absolute time may be at most this factor slower than
    /// the committed one (CI machines differ; 4× rejects only
    /// order-of-magnitude regressions).
    pub wall_tolerance: f64,
    /// A replayed speedup ratio may be at most this factor below the
    /// committed one.
    pub ratio_tolerance: f64,
}

impl Default for GateTolerance {
    fn default() -> Self {
        Self {
            wall_tolerance: 4.0,
            ratio_tolerance: 2.0,
        }
    }
}

/// True for rows whose `wall_s` is a dimensionless speedup ratio rather
/// than a time: the hot-path `speedup/*` rows, the table binaries'
/// `*/par_speedup` rows, and the profiler-overhead off/on ratio (named
/// outside `speedup/` so the geomean row stays a pure legacy-vs-new
/// aggregate).
pub fn is_ratio_row(r: &BenchRecord) -> bool {
    r.name.starts_with("speedup/")
        || r.name.ends_with("/par_speedup")
        || r.name.starts_with("prof_overhead/")
}

/// True for rows whose numbers are all deterministic (no timing at all):
/// the allocation-count rows.
pub fn is_counted_row(r: &BenchRecord) -> bool {
    r.name.starts_with("allocs/")
}

/// True for `table1`/`table2` rows, whose wall times the gate treats as
/// informational: the committed times come from a full-suite run whose
/// shared `OptContext` was warm by the time later benchmarks ran, while
/// the gate replays a subset from a cold context — a systematic bias,
/// not a regression signal. Their *quality* fields (sizes, depths,
/// multiplicative complexity) are still compared exactly; timing
/// regressions are caught by the hot-path rows, which are replayed
/// under the same conditions that produced the baseline.
pub fn is_table_row(r: &BenchRecord) -> bool {
    r.bench.starts_with("table")
}

/// Compares a replayed run against a committed baseline, returning one
/// human-readable line per violation (empty = gate passes).
///
/// Rows are matched by `(bench, name)`. Baseline rows the replay did not
/// produce are ignored — the gate replays a *subset* — but every
/// replayed row must have a baseline counterpart: a replay row with no
/// baseline means the committed trajectory file is stale.
pub fn compare(
    baseline: &[BenchRecord],
    replay: &[BenchRecord],
    tol: GateTolerance,
) -> Vec<String> {
    let mut violations = Vec::new();
    for r in replay {
        let Some(b) = baseline
            .iter()
            .find(|b| b.bench == r.bench && b.name == r.name)
        else {
            violations.push(format!(
                "{}/{}: no baseline row — regenerate the committed BENCH file",
                r.bench, r.name
            ));
            continue;
        };
        // Deterministic fields: exact.
        let fields = [
            ("size_before", b.size_before, r.size_before),
            ("size_after", b.size_after, r.size_after),
            ("depth_before", b.depth_before, r.depth_before),
            ("depth_after", b.depth_after, r.depth_after),
            ("mc_before", b.mc_before, r.mc_before),
            ("mc_after", b.mc_after, r.mc_after),
        ];
        for (field, want, got) in fields {
            if want != got {
                violations.push(format!(
                    "{}/{}: {field} = {got}, baseline {want} (deterministic field drifted)",
                    r.bench, r.name
                ));
            }
        }
        if b.flow != r.flow {
            violations.push(format!(
                "{}/{}: flow '{}' vs baseline '{}'",
                r.bench, r.name, r.flow, b.flow
            ));
        }
        // Wall clock: ratio rows must not drop, time rows must not blow
        // up, counted rows carry no timing at all.
        if is_ratio_row(r) {
            let floor = b.wall_s / tol.ratio_tolerance;
            if r.wall_s < floor {
                violations.push(format!(
                    "{}/{}: speedup {:.2}x below floor {:.2}x (baseline {:.2}x / tolerance {})",
                    r.bench, r.name, r.wall_s, floor, b.wall_s, tol.ratio_tolerance
                ));
            }
        } else if !is_counted_row(r) && !is_table_row(r) {
            let ceiling = b.wall_s * tol.wall_tolerance;
            if r.wall_s > ceiling && b.wall_s > 0.0 {
                violations.push(format!(
                    "{}/{}: wall {:.3}s over ceiling {:.3}s (baseline {:.3}s * tolerance {})",
                    r.bench, r.name, r.wall_s, ceiling, b.wall_s, tol.wall_tolerance
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, name: &str, size_after: usize, wall_s: f64) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            name: name.to_string(),
            size_before: 100,
            size_after,
            depth_before: 5,
            depth_after: 4,
            mc_before: 50,
            mc_after: 20,
            wall_s,
            threads: 1,
            flow: String::new(),
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![rec("hotpath", "enum/x", 40, 0.5)];
        assert!(compare(&base, &base.clone(), GateTolerance::default()).is_empty());
    }

    #[test]
    fn deterministic_drift_is_flagged_exactly() {
        let base = vec![rec("hotpath", "enum/x", 40, 0.5)];
        let mut replay = base.clone();
        replay[0].size_after = 41;
        let v = compare(&base, &replay, GateTolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("size_after"));
    }

    #[test]
    fn wall_time_within_tolerance_passes_beyond_fails() {
        let base = vec![rec("hotpath", "enum/x", 40, 0.5)];
        let mut ok = base.clone();
        ok[0].wall_s = 1.9; // < 0.5 * 4
        assert!(compare(&base, &ok, GateTolerance::default()).is_empty());
        let mut slow = base.clone();
        slow[0].wall_s = 2.5; // > 0.5 * 4
        let v = compare(&base, &slow, GateTolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("ceiling"));
    }

    #[test]
    fn speedup_rows_gate_on_the_floor_not_the_ceiling() {
        let base = vec![rec("hotpath", "speedup/x", 40, 2.4)];
        // Faster than baseline is fine; slightly slower is fine.
        for ratio in [5.0, 2.4, 1.3] {
            let mut replay = base.clone();
            replay[0].wall_s = ratio;
            assert!(
                compare(&base, &replay, GateTolerance::default()).is_empty(),
                "ratio {ratio}"
            );
        }
        let mut bad = base.clone();
        bad[0].wall_s = 1.0; // < 2.4 / 2
        let v = compare(&base, &bad, GateTolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("floor"));
    }

    #[test]
    fn table_row_wall_times_are_informational_quality_is_not() {
        // Cold-context replay vs warm full-suite baseline: 10× slower
        // wall is fine for a table row...
        let base = vec![rec("table1", "int2float", 70, 0.007)];
        let mut replay = base.clone();
        replay[0].wall_s = 0.07;
        assert!(compare(&base, &replay, GateTolerance::default()).is_empty());
        // ...but a quality drift on the same row still fails.
        replay[0].mc_after = 21;
        let v = compare(&base, &replay, GateTolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("mc_after"));
    }

    #[test]
    fn missing_baseline_row_is_a_violation() {
        let base = vec![rec("hotpath", "enum/x", 40, 0.5)];
        let replay = vec![rec("hotpath", "enum/new-workload", 40, 0.5)];
        let v = compare(&base, &replay, GateTolerance::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no baseline row"));
    }

    #[test]
    fn json_round_trip_preserves_records() {
        let dir = std::env::temp_dir().join(format!("mc-gate-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let records = vec![
            rec("hotpath", "enum/x", 40, 0.5),
            rec("table1", "adder/par_speedup", 33, 1.75),
        ];
        crate::write_bench_json(&path, &records).unwrap();
        let back = read_bench_json(&path).unwrap();
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
