//! Regenerates the paper's Table 2 (MPC/FHE benchmarks).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin table2 [--heavy] [--rounds N]
//! ```
//!
//! Without `--heavy` only the arithmetic rows run (adders, multiplier,
//! comparators — seconds). With `--heavy` the block ciphers and hash
//! functions are included; `--rounds N` caps the until-convergence loop on
//! those (default 3; the paper let them run to full convergence on a Xeon,
//! spending hours on SHA-256).

use xag_bench::{normalized_geomean, run_flow_with, TableRow};
use xag_circuits::mpc::mpc_suite;
use xag_mc::OptContext;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let heavy = args.iter().any(|a| a == "--heavy");
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    println!("Table 2: MPC and FHE benchmarks");
    println!("{}", TableRow::header());
    println!("{}", "-".repeat(TableRow::header().len()));

    let mut pairs_one = Vec::new();
    let mut pairs_conv = Vec::new();
    // One context for the whole suite: representatives synthesized for one
    // benchmark are reused by every later one.
    let mut ctx = OptContext::new();
    for bench in mpc_suite(heavy) {
        // The published MPC circuits are already size-optimized, so no
        // baseline pass; heavy entries get a capped convergence loop.
        let max_rounds = if bench.heavy { rounds } else { 50 };
        let flow = run_flow_with(&mut ctx, &bench.xag, 0, max_rounds);
        let row = TableRow {
            name: bench.name.to_string(),
            inputs: bench.xag.num_inputs(),
            outputs: bench.xag.num_outputs(),
            flow: flow.clone(),
        };
        println!("{}", row.format());
        pairs_one.push((flow.initial.0, flow.one_round.0));
        pairs_conv.push((flow.initial.0, flow.converged.0));
    }

    println!();
    println!(
        "Normalized geometric mean: one round {:.2}, convergence {:.2}  (paper: 0.68 / 0.56)",
        normalized_geomean(&pairs_one),
        normalized_geomean(&pairs_conv)
    );
    if !heavy {
        println!("(run with --heavy to include AES, DES, MD5, SHA-1, SHA-256)");
    }
}
