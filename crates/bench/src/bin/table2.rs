//! Regenerates the paper's Table 2 (MPC/FHE benchmarks).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin table2 [--heavy] [--rounds N] [--threads N] [--json PATH]
//! ```
//!
//! Without `--heavy` only the arithmetic rows run (adders, multiplier,
//! comparators — seconds). With `--heavy` the block ciphers and hash
//! functions are included; `--rounds N` caps the until-convergence loop on
//! those (default 3; the paper let them run to full convergence on a Xeon,
//! spending hours on SHA-256). With `--threads N` every row additionally
//! runs the sharded parallel engine with one and with `N` workers and
//! reports the (bit-identical) result and the wall-clock speedup. With
//! `--json PATH` a machine-readable record per row is written alongside
//! the printed table.

use xag_bench::{
    json_path_from_args, normalized_geomean, run_flow_threads, write_bench_json, BenchRecord,
    TableRow,
};
use xag_circuits::mpc::mpc_suite;
use xag_mc::OptContext;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let heavy = args.iter().any(|a| a == "--heavy");
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    println!("Table 2: MPC and FHE benchmarks");
    println!("{}", TableRow::header());
    println!("{}", "-".repeat(TableRow::header().len()));

    let mut pairs_one = Vec::new();
    let mut pairs_conv = Vec::new();
    // One context for the whole suite: representatives synthesized for one
    // benchmark are reused by every later one.
    let mut ctx = OptContext::new();
    let mut speedups = Vec::new();
    let mut records = Vec::new();
    for bench in mpc_suite(heavy) {
        // The published MPC circuits are already size-optimized, so no
        // baseline pass; heavy entries get a capped convergence loop.
        let max_rounds = if bench.heavy { rounds } else { 50 };
        let flow = run_flow_threads(&mut ctx, &bench.xag, 0, max_rounds, threads);
        if let Some(p) = &flow.parallel {
            speedups.push(p.speedup());
            // The 1-vs-N wall-time ratio as its own trajectory row:
            // `wall_s` carries the speedup, the count fields the
            // (bit-identical) parallel result.
            records.push(BenchRecord {
                bench: "table2".to_string(),
                name: format!("{}/par_speedup", bench.name),
                size_before: bench.xag.num_gates(),
                size_after: flow.optimized.num_gates(),
                depth_before: 0,
                depth_after: 0,
                mc_before: bench.xag.num_ands(),
                mc_after: p.counts.0,
                wall_s: p.speedup(),
                threads,
                flow: xag_mc::FlowSpec::default().normalized(),
            });
        }
        records.push(BenchRecord {
            bench: "table2".to_string(),
            name: bench.name.to_string(),
            size_before: bench.xag.num_gates(),
            size_after: flow.optimized.num_gates(),
            depth_before: bench.xag.and_depth(),
            depth_after: flow.optimized.and_depth(),
            mc_before: bench.xag.num_ands(),
            mc_after: flow.converged.0,
            wall_s: flow.converged.2,
            threads,
            flow: xag_mc::FlowSpec::default().normalized(),
        });
        let row = TableRow {
            name: bench.name.to_string(),
            inputs: bench.xag.num_inputs(),
            outputs: bench.xag.num_outputs(),
            flow: flow.clone(),
        };
        println!("{}", row.format());
        pairs_one.push((flow.initial.0, flow.one_round.0));
        pairs_conv.push((flow.initial.0, flow.converged.0));
    }

    println!();
    println!(
        "Normalized geometric mean: one round {:.2}, convergence {:.2}  (paper: 0.68 / 0.56)",
        normalized_geomean(&pairs_one),
        normalized_geomean(&pairs_conv)
    );
    if !speedups.is_empty() {
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("Mean parallel speedup at {threads} threads: {mean:.2}x");
    }
    if let Some(path) = json_path_from_args(&args) {
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote {} records to {}", records.len(), path.display());
    }
    if !heavy {
        println!("(run with --heavy to include AES, DES, MD5, SHA-1, SHA-256)");
    }
}
