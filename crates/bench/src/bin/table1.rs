//! Regenerates the paper's Table 1 (EPFL benchmarks).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin table1 [--full] [--threads N] [--json PATH]
//! ```
//!
//! Without `--full` the suite runs at reduced word widths (seconds instead
//! of hours); the improvement *shape* — arithmetic benchmarks gaining far
//! more than random-control ones — is preserved at either scale. With
//! `--threads N` every row additionally runs the sharded parallel engine
//! with one and with `N` workers and reports the (bit-identical) result
//! and the wall-clock speedup. With `--json PATH` a machine-readable
//! record per row (counts/depth before vs after convergence, wall time,
//! threads) is written alongside the printed table.

use xag_bench::{
    json_path_from_args, normalized_geomean, run_flow_threads, write_bench_json, BenchRecord,
    TableRow,
};
use xag_circuits::epfl::{epfl_suite, Scale};
use xag_mc::OptContext;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let scale = if full { Scale::Full } else { Scale::Reduced };
    let max_rounds = if full { 60 } else { 30 };

    println!("Table 1: EPFL benchmarks ({scale:?} scale)");
    println!("{}", TableRow::header());
    println!("{}", "-".repeat(TableRow::header().len()));

    let mut arith_pairs_one = Vec::new();
    let mut arith_pairs_conv = Vec::new();
    let mut ctrl_pairs_one = Vec::new();
    let mut ctrl_pairs_conv = Vec::new();

    // One context for the whole suite: representatives synthesized for one
    // benchmark are reused by every later one.
    let mut ctx = OptContext::new();
    let mut speedups = Vec::new();
    let mut records = Vec::new();
    for bench in epfl_suite(scale) {
        let flow = run_flow_threads(&mut ctx, &bench.xag, 2, max_rounds, threads);
        if let Some(p) = &flow.parallel {
            speedups.push(p.speedup());
            // The 1-vs-N wall-time ratio as its own trajectory row:
            // `wall_s` carries the speedup, the count fields the
            // (bit-identical) parallel result.
            records.push(BenchRecord {
                bench: "table1".to_string(),
                name: format!("{}/par_speedup", bench.name),
                size_before: bench.xag.num_gates(),
                size_after: flow.optimized.num_gates(),
                depth_before: 0,
                depth_after: 0,
                mc_before: bench.xag.num_ands(),
                mc_after: p.counts.0,
                wall_s: p.speedup(),
                threads,
                flow: xag_mc::FlowSpec::default().normalized(),
            });
        }
        records.push(BenchRecord {
            bench: "table1".to_string(),
            name: bench.name.to_string(),
            size_before: bench.xag.num_gates(),
            size_after: flow.optimized.num_gates(),
            depth_before: bench.xag.and_depth(),
            depth_after: flow.optimized.and_depth(),
            mc_before: bench.xag.num_ands(),
            mc_after: flow.converged.0,
            wall_s: flow.converged.2,
            threads,
            flow: xag_mc::FlowSpec::default().normalized(),
        });
        let row = TableRow {
            name: bench.name.to_string(),
            inputs: bench.xag.num_inputs(),
            outputs: bench.xag.num_outputs(),
            flow: flow.clone(),
        };
        println!("{}", row.format());
        let one = (flow.initial.0, flow.one_round.0);
        let conv = (flow.initial.0, flow.converged.0);
        if bench.arithmetic {
            arith_pairs_one.push(one);
            arith_pairs_conv.push(conv);
        } else {
            ctrl_pairs_one.push(one);
            ctrl_pairs_conv.push(conv);
        }
    }

    println!();
    println!(
        "Normalized geometric mean (arithmetic):     one round {:.2}, convergence {:.2}  (paper: 0.60 / 0.49)",
        normalized_geomean(&arith_pairs_one),
        normalized_geomean(&arith_pairs_conv)
    );
    println!(
        "Normalized geometric mean (random-control): one round {:.2}, convergence {:.2}  (paper: 0.90 / 0.87)",
        normalized_geomean(&ctrl_pairs_one),
        normalized_geomean(&ctrl_pairs_conv)
    );
    if !speedups.is_empty() {
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("Mean parallel speedup at {threads} threads: {mean:.2}x");
    }
    if let Some(path) = json_path_from_args(&args) {
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote {} records to {}", records.len(), path.display());
    }
}
