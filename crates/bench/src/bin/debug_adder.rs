//! Developer tool: trace per-round AND counts while optimizing a ripple
//! adder, to inspect convergence behaviour.
//!
//! Usage: `debug_adder [bits] [cut_limit] [cut_size] [exact_vars]`

use xag_circuits::arith::{add_ripple, input_word, output_word};
use xag_mc::{McOptimizer, RewriteParams};
use xag_network::{Signal, Xag};

fn main() {
    let arg = |i: usize, default: usize| -> usize {
        std::env::args()
            .nth(i)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let bits = arg(1, 16);
    let cut_limit = arg(2, 12);
    let cut_size = arg(3, 6);
    let exact_vars = arg(4, 4);

    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &s);
    x.output(c);
    println!("initial: {} AND {} XOR", x.num_ands(), x.num_xors());

    let mut params = RewriteParams::default();
    params.cut_params.cut_limit = cut_limit;
    params.cut_params.cut_size = cut_size;
    params.synth_config.exact_search_max_vars = exact_vars;
    let mut opt = McOptimizer::with_params(params);
    let stats = opt.run_to_convergence(&mut x);
    for (i, r) in stats.rounds.iter().enumerate() {
        println!("round {i}: {r}");
    }
    println!("final: {} AND {} XOR ({stats})", x.num_ands(), x.num_xors());
}
