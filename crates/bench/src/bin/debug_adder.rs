//! Developer tool: trace per-round AND counts while optimizing a ripple
//! adder through the pass pipeline, to inspect convergence behaviour.
//!
//! Usage: `debug_adder [bits] [cut_limit] [cut_size] [exact_vars] [threads] [--json PATH]`
//!
//! With `threads > 1` the flow runs through the sharded parallel engine.
//! With `--json PATH` one before/after record of the run is written.

use xag_bench::{json_path_from_args, write_bench_json, BenchRecord};
use xag_circuits::arith::{add_ripple, input_word, output_word};
use xag_mc::{OptContext, Pipeline, RewriteParams};
use xag_network::{Signal, Xag};

fn main() {
    let arg = |i: usize, default: usize| -> usize {
        std::env::args()
            .nth(i)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let bits = arg(1, 16);
    let cut_limit = arg(2, 12);
    let cut_size = arg(3, 6);
    let exact_vars = arg(4, 4);
    let threads = arg(5, 1);

    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &s);
    x.output(c);
    println!("initial: {} AND {} XOR", x.num_ands(), x.num_xors());
    let (size_before, depth_before, mc_before) = (x.num_gates(), x.and_depth(), x.num_ands());

    let mut params = RewriteParams::default();
    params.cut_params.cut_limit = cut_limit;
    params.cut_params.cut_size = cut_size;
    params.synth_config.exact_search_max_vars = exact_vars;
    let flow = Pipeline::from_params(&params);
    println!("flow: {:?}", flow.pass_names());

    let mut ctx = OptContext::with_config(params.classify_config, params.synth_config);
    let stats = if threads > 1 {
        flow.run_parallel(&mut x, &mut ctx, threads)
    } else {
        flow.run(&mut x, &mut ctx)
    };
    for (i, r) in stats.passes.iter().enumerate() {
        println!("round {i}: {r}");
    }
    println!("per-pass totals:");
    for p in stats.per_pass() {
        println!(
            "  {:<18} {} runs | {} ANDs saved | {} XORs saved | {} rewrites | {:.2}s",
            p.name,
            p.runs,
            p.ands_saved,
            p.xors_saved,
            p.rewrites_applied,
            p.elapsed.as_secs_f64()
        );
    }
    println!("final: {} AND {} XOR ({stats})", x.num_ands(), x.num_xors());
    let argv: Vec<String> = std::env::args().collect();
    if let Some(path) = json_path_from_args(&argv) {
        let record = BenchRecord {
            bench: "debug_adder".to_string(),
            name: format!("adder{bits}"),
            size_before,
            size_after: x.num_gates(),
            depth_before,
            depth_after: x.and_depth(),
            mc_before,
            mc_after: x.num_ands(),
            wall_s: stats.total_time().as_secs_f64(),
            threads,
            // The spec for the from_params cut schedule actually run
            // (cut_limit/exact_vars are context knobs outside the spec
            // language).
            flow: if cut_size > 4 {
                format!("{{mc(cut=4);mc(cut={cut_size})}}*")
            } else {
                format!("mc(cut={cut_size})*")
            },
        };
        write_bench_json(&path, std::slice::from_ref(&record)).expect("write --json output");
        println!("wrote 1 record to {}", path.display());
    }
}
