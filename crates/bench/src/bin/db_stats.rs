//! Database and classification statistics (paper §4.1).
//!
//! The paper precomputes `XAG_DB`, one MC-optimum circuit per affine class
//! representative (147 998 of the 150 357 six-variable classes). This
//! reproduction synthesizes entries on demand into the shared
//! [`OptContext`]; this tool reports what the lazily built database looks
//! like after classifying a function sample: entry count, the AND-gate
//! histogram per classified function, and the AND-gate histogram of the
//! distinct database entries.
//!
//! Usage: `cargo run --release -p xag-bench --bin db_stats [samples] [--threads N] [--json PATH]`
//!
//! With `--threads N` the random sample is classified on `N` workers with
//! forked contexts that are absorbed back afterwards — the same
//! fork/absorb protocol the parallel rewriting engine uses, so the final
//! database is identical to a sequential run's. With `--json PATH` one
//! record is written: `size_before` is the number of functions
//! classified, `size_after` the resulting database entry count (the
//! depth/mc fields do not apply to this tool and are 0).

use xag_bench::{json_path_from_args, write_bench_json, BenchRecord};
use xag_mc::OptContext;
use xag_tt::Tt;

/// The deterministic sample stream: `(truth table index i) → function`.
fn sample(i: usize) -> Tt {
    let mut state = 0x853c_49e6_748f_ea9bu64;
    state = state
        .rotate_left(23)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    // Mix the index in properly so samples differ without a running state
    // (workers classify disjoint stripes of the stream).
    state ^= (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let vars = 4 + (i % 3); // 4, 5, 6
    Tt::from_bits(state.rotate_left((i % 64) as u32), vars)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    let mut ctx = OptContext::new();
    let t0 = std::time::Instant::now();

    // Exhaustive over ≤3-variable functions, then pseudo-random wider ones.
    let mut histogram = std::collections::BTreeMap::<usize, usize>::new();
    for bits in 0..256u64 {
        let frag = ctx.candidate_for_cut(Tt::from_bits(bits, 3));
        *histogram.entry(frag.num_ands()).or_insert(0) += 1;
    }
    if threads <= 1 {
        for i in 0..samples {
            let frag = ctx.candidate_for_cut(sample(i));
            *histogram.entry(frag.num_ands()).or_insert(0) += 1;
        }
    } else {
        // Stripe the sample stream over forked worker contexts; absorb the
        // forks back so the merged database matches a sequential run.
        let (counts, forks) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let mut wctx = ctx.fork();
                    s.spawn(move || {
                        let mut counts = std::collections::BTreeMap::<usize, usize>::new();
                        let mut i = w;
                        while i < samples {
                            let frag = wctx.candidate_for_cut(sample(i));
                            *counts.entry(frag.num_ands()).or_insert(0) += 1;
                            i += threads;
                        }
                        (counts, wctx)
                    })
                })
                .collect();
            let mut counts = std::collections::BTreeMap::<usize, usize>::new();
            let mut forks = Vec::new();
            for h in handles {
                let (c, wctx) = h.join().expect("db worker panicked");
                for (k, v) in c {
                    *counts.entry(k).or_insert(0) += v;
                }
                forks.push(wctx);
            }
            (counts, forks)
        });
        for fork in forks {
            ctx.absorb(fork);
        }
        for (k, v) in counts {
            *histogram.entry(k).or_insert(0) += v;
        }
    }

    println!("functions classified : {}", 256 + samples);
    println!("database entries     : {}", ctx.db_size());
    println!("entry AND histogram (per classified function):");
    for (ands, count) in &histogram {
        println!("  {ands:>2} AND gates: {count}");
    }
    println!("entry AND histogram (distinct database entries):");
    for (ands, count) in ctx.db_histogram() {
        println!("  {ands:>2} AND gates: {count}");
    }
    println!();
    println!(
        "(the paper's precomputed XAG_DB holds 147 998 representatives in a \
         2 339 563-node XAG; this database is lazy, so it only holds what \
         the run touched)"
    );
    if let Some(path) = json_path_from_args(&args) {
        let record = BenchRecord {
            bench: "db_stats".to_string(),
            name: format!("classify-{samples}"),
            size_before: 256 + samples,
            size_after: ctx.db_size(),
            depth_before: 0,
            depth_after: 0,
            mc_before: 0,
            mc_after: 0,
            wall_s: t0.elapsed().as_secs_f64(),
            threads,
            // db_stats measures classification, not a flow.
            flow: String::new(),
        };
        write_bench_json(&path, std::slice::from_ref(&record)).expect("write --json output");
        println!("wrote 1 record to {}", path.display());
    }
}
