//! Database and classification statistics (paper §4.1).
//!
//! The paper precomputes `XAG_DB`, one MC-optimum circuit per affine class
//! representative (147 998 of the 150 357 six-variable classes). This
//! reproduction synthesizes entries on demand into the shared
//! [`OptContext`]; this tool reports what the lazily built database looks
//! like after classifying a function sample: entry count, the AND-gate
//! histogram per classified function, and the AND-gate histogram of the
//! distinct database entries.
//!
//! Usage: `cargo run --release -p xag-bench --bin db_stats [samples]`

use xag_mc::OptContext;
use xag_tt::Tt;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let mut ctx = OptContext::new();

    // Exhaustive over ≤3-variable functions, then pseudo-random wider ones.
    let mut histogram = std::collections::BTreeMap::<usize, usize>::new();
    let mut record = |frag: &xag_network::XagFragment| {
        *histogram.entry(frag.num_ands()).or_insert(0) += 1;
    };
    for bits in 0..256u64 {
        record(&ctx.candidate_for_cut(Tt::from_bits(bits, 3)));
    }
    let mut state = 0x853c_49e6_748f_ea9bu64;
    for i in 0..samples {
        state = state
            .rotate_left(23)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(i as u64);
        let vars = 4 + (i % 3); // 4, 5, 6
        record(&ctx.candidate_for_cut(Tt::from_bits(state, vars)));
    }

    println!("functions classified : {}", 256 + samples);
    println!("database entries     : {}", ctx.db_size());
    println!("entry AND histogram (per classified function):");
    for (ands, count) in &histogram {
        println!("  {ands:>2} AND gates: {count}");
    }
    println!("entry AND histogram (distinct database entries):");
    for (ands, count) in ctx.db_histogram() {
        println!("  {ands:>2} AND gates: {count}");
    }
    println!();
    println!(
        "(the paper's precomputed XAG_DB holds 147 998 representatives in a \
         2 339 563-node XAG; this database is lazy, so it only holds what \
         the run touched)"
    );
}
