//! CI bench-regression gate: replays a fast subset of the benchmarks and
//! holds the results to the committed `BENCH_*.json` perf trajectory.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline BENCH_6.json [--samples N] [--wall-tol F] [--ratio-tol F] [--skip-table1]
//! bench_gate --merge OUT.json IN1.json IN2.json ...
//! ```
//!
//! Gate mode replays
//!
//! * the full hot-path microbenchmark ([`xag_bench::hotpath::run_hotpath`],
//!   with the allocation guarantee asserted), and
//! * a two-benchmark subset of Table 1 (`adder`, `int2float` at reduced
//!   scale) through the same flow the `table1` binary records,
//!
//! then compares row by row ([`xag_bench::gate::compare`]): gate counts,
//! depths, cut totals, and allocation counts must match the baseline
//! **exactly** (the engine is deterministic — drift means a correctness
//! or quality regression, not noise); hot-path wall-clock times may not
//! exceed the baseline by more than `--wall-tol` (default 4×), and
//! speedup ratios may not fall below baseline divided by `--ratio-tol`
//! (default 2×). Table-row wall times are informational only — their
//! baseline comes from a warm full-suite run (see
//! [`xag_bench::gate::is_table_row`]). Any violation prints one line
//! and the process exits nonzero.
//!
//! Merge mode concatenates several `--json` outputs (e.g. from `table1`,
//! `table2`, and `hotpath_bench`) into one committed trajectory file,
//! using the workspace's own JSON reader/writer so the result is
//! byte-stable.

use std::path::PathBuf;

use xag_bench::gate::{compare, read_bench_json, GateTolerance};
use xag_bench::hotpath::run_hotpath;
use xag_bench::{run_flow_threads, write_bench_json, BenchRecord};
use xag_circuits::epfl::{epfl_suite, Scale};
use xag_mc::OptContext;

/// The Table 1 rows the gate replays: small enough for CI, and covering
/// one arithmetic and one random-control benchmark.
const TABLE1_SUBSET: &[&str] = &["adder", "int2float"];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--merge") {
        let paths: Vec<PathBuf> = args[i + 1..].iter().map(PathBuf::from).collect();
        let (out, inputs) = paths.split_first().unwrap_or_else(|| {
            eprintln!("usage: bench_gate --merge OUT.json IN1.json [IN2.json ...]");
            std::process::exit(2);
        });
        let mut records = Vec::new();
        for input in inputs {
            let part = read_bench_json(input).unwrap_or_else(|e| {
                eprintln!("bench_gate: {e}");
                std::process::exit(2);
            });
            println!("merged {} records from {}", part.len(), input.display());
            records.extend(part);
        }
        write_bench_json(out, &records).expect("write merged bench json");
        println!("wrote {} records to {}", records.len(), out.display());
        return;
    }

    let Some(baseline_path) = flag_value(&args, "--baseline") else {
        eprintln!("usage: bench_gate --baseline BENCH_6.json [--samples N] [--wall-tol F] [--ratio-tol F] [--skip-table1]");
        std::process::exit(2);
    };
    let samples: usize = flag_value(&args, "--samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let tol = GateTolerance {
        wall_tolerance: flag_value(&args, "--wall-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4.0),
        ratio_tolerance: flag_value(&args, "--ratio-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.0),
    };

    let baseline = read_bench_json(&PathBuf::from(&baseline_path)).unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        std::process::exit(2);
    });

    // Replay the hot-path microbenchmark with the allocation guarantee
    // asserted.
    let mut replay = run_hotpath(samples, true);

    // Replay the Table 1 subset through the same flow `table1` records.
    // Determinism makes the counts comparable to a full-suite baseline
    // run: context cache state and thread counts never change results.
    if !args.iter().any(|a| a == "--skip-table1") {
        let mut ctx = OptContext::new();
        for bench in epfl_suite(Scale::Reduced) {
            if !TABLE1_SUBSET.contains(&bench.name) {
                continue;
            }
            let flow = run_flow_threads(&mut ctx, &bench.xag, 2, 30, 1);
            println!(
                "table1/{}: {} -> {} ANDs in {:.2}s",
                bench.name, flow.initial.0, flow.converged.0, flow.converged.2
            );
            replay.push(BenchRecord {
                bench: "table1".to_string(),
                name: bench.name.to_string(),
                size_before: bench.xag.num_gates(),
                size_after: flow.optimized.num_gates(),
                depth_before: bench.xag.and_depth(),
                depth_after: flow.optimized.and_depth(),
                mc_before: bench.xag.num_ands(),
                mc_after: flow.converged.0,
                wall_s: flow.converged.2,
                threads: 1,
                flow: xag_mc::FlowSpec::default().normalized(),
            });
        }
    }

    let violations = compare(&baseline, &replay, tol);
    if violations.is_empty() {
        println!(
            "bench gate: {} rows checked against {baseline_path} — OK",
            replay.len()
        );
    } else {
        eprintln!("bench gate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
