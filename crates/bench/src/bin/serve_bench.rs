//! Load benchmark for the `mc-serve` daemon: N concurrent clients hammer
//! an in-process server with seeded fuzz networks and the run reports
//! sustained throughput and the cache-hit speedup.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin serve_bench \
//!     [--clients N] [--jobs M] [--workers W] [--flow SPEC] [--json PATH]
//! ```
//!
//! `--flow` takes any FlowSpec (alias or full spec, default `paper`), so
//! the throughput and cache-hit curves can be reproduced on custom
//! flows; the `--json` records carry the normalized spec.
//!
//! Two phases, both with all clients running concurrently:
//!
//! * **cold** — every client submits `M` circuits with client-disjoint
//!   seeds, so every job is a cache miss and runs the full paper flow;
//! * **warm** — the same submissions again, so every job is a semantic
//!   cache hit (verified against the daemon's `stats` counters).
//!
//! The cache-hit speedup is the ratio of the phases' per-job wall times.
//! With `--json PATH` one record per phase is written (`threads` carries
//! the client count; gate counts are summed over the unique jobs).

use std::sync::Arc;
use std::time::Instant;

use mc_serve::{Client, OptimizeRequest, ServeConfig, Server};
use xag_bench::{json_path_from_args, write_bench_json, BenchRecord};
use xag_mc::FlowSpec;
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::write_bristol;

fn bristol_text(seed: u64, cfg: &FuzzConfig) -> String {
    let xag = random_xag(cfg, seed);
    let mut buf = Vec::new();
    write_bristol(&xag, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("bristol writer emits ASCII")
}

/// Runs one phase: every client submits its circuits; returns the phase
/// wall time and the summed before/after AND counts.
fn run_phase(
    addr: std::net::SocketAddr,
    circuits: &Arc<Vec<Vec<String>>>,
    flow: &FlowSpec,
    expect_cached: bool,
) -> (f64, usize, usize) {
    let t0 = Instant::now();
    let totals = std::thread::scope(|s| {
        let handles: Vec<_> = (0..circuits.len())
            .map(|c| {
                let circuits = Arc::clone(circuits);
                let flow = flow.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to daemon");
                    let mut before = 0usize;
                    let mut after = 0usize;
                    for circuit in &circuits[c] {
                        let result = client
                            .optimize(OptimizeRequest {
                                circuit: circuit.clone(),
                                flow: flow.clone(),
                                ..OptimizeRequest::default()
                            })
                            .expect("optimize request");
                        assert_eq!(
                            result.cached, expect_cached,
                            "phase expectation violated (cached={})",
                            result.cached
                        );
                        before += result.ands_before;
                        after += result.ands_after;
                    }
                    (before, after)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |acc, (b, a)| (acc.0 + b, acc.1 + a))
    });
    (t0.elapsed().as_secs_f64(), totals.0, totals.1)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = flag("--clients", 4).max(1);
    let jobs = flag("--jobs", 8).max(1);
    let workers = flag("--workers", 4).max(1);
    let flow: FlowSpec = args
        .iter()
        .position(|a| a == "--flow")
        .and_then(|i| args.get(i + 1))
        .map(|text| FlowSpec::parse(text).expect("--flow takes a valid FlowSpec"))
        .unwrap_or_default();

    let config = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let handle = Server::bind(ServeConfig {
        // The warm phase asserts every resubmission hits, so the LRU must
        // hold the whole cold working set.
        cache_capacity: config.cache_capacity.max(clients * jobs),
        ..config
    })
    .expect("bind daemon on an ephemeral port");
    let addr = handle.local_addr();
    println!(
        "serve_bench: daemon on {addr}, {clients} clients × {jobs} jobs, {workers} workers, \
         flow {}",
        flow.normalized()
    );

    // Client-disjoint seeds so the cold phase is all misses.
    let cfg = FuzzConfig::default();
    let circuits: Arc<Vec<Vec<String>>> = Arc::new(
        (0..clients)
            .map(|c| {
                (0..jobs)
                    .map(|j| bristol_text((c * 10_000 + j) as u64, &cfg))
                    .collect()
            })
            .collect(),
    );
    let total_jobs = (clients * jobs) as f64;

    let (cold_s, ands_before, ands_after) = run_phase(addr, &circuits, &flow, false);
    let cold_rate = total_jobs / cold_s;
    println!(
        "cold: {cold_s:.3}s for {} jobs = {cold_rate:.1} jobs/s (AND {ands_before} -> {ands_after})",
        clients * jobs
    );

    let (warm_s, _, _) = run_phase(addr, &circuits, &flow, true);
    let warm_rate = total_jobs / warm_s;
    println!(
        "warm: {warm_s:.3}s for {} jobs = {warm_rate:.1} jobs/s (all cache hits)",
        clients * jobs
    );
    println!(
        "cache-hit speedup: {:.2}x per job",
        cold_s / warm_s.max(1e-9)
    );

    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats request");
    println!(
        "daemon stats: {} served, {} hits / {} misses ({:.1}% hit rate), {} entries",
        stats.jobs_served,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.hit_rate(),
        stats.cache_entries,
    );
    assert!(
        stats.cache_hits >= (clients * jobs) as u64,
        "warm phase must be served from the cache"
    );
    client.shutdown().expect("shutdown request");
    handle.join();

    if let Some(path) = json_path_from_args(&args) {
        let record = |name: &str, wall_s: f64| BenchRecord {
            bench: "serve_bench".to_string(),
            name: name.to_string(),
            size_before: clients * jobs,
            size_after: clients * jobs,
            depth_before: 0,
            depth_after: 0,
            mc_before: ands_before,
            mc_after: ands_after,
            wall_s,
            threads: clients,
            flow: flow.normalized(),
        };
        let records = [record("cold", cold_s), record("warm", warm_s)];
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote 2 records to {}", path.display());
    }
}
