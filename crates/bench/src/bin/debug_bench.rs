//! Developer tool: run the experiment flow phases on one named EPFL
//! benchmark with verbose progress, to localize pathological behaviour.
//!
//! The phases are driven pass by pass — [`SizeRewrite`] for the baseline,
//! then [`McRewrite`] rounds — over one shared [`OptContext`], mirroring
//! what `run_flow` composes into pipelines.
//!
//! Usage: `debug_bench [name] [--threads N] [--json PATH]` — with
//! `--threads N` each round runs through the sharded parallel engine;
//! with `--json PATH` one before/after record of the whole phase trace
//! is written.

use xag_bench::{json_path_from_args, write_bench_json, BenchRecord};
use xag_circuits::epfl::{epfl_suite, Scale};
use xag_mc::{McRewrite, OptContext, Pass, SizeRewrite};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "div".into());
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let suite = epfl_suite(Scale::Reduced);
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .expect("unknown benchmark");
    let mut xag = bench.xag.cleanup();
    println!(
        "{name}: {} AND {} XOR ({} nodes)",
        xag.num_ands(),
        xag.num_xors(),
        xag.capacity()
    );
    let (size_before, depth_before, mc_before) = (xag.num_gates(), xag.and_depth(), xag.num_ands());
    let t0 = std::time::Instant::now();
    let mut ctx = OptContext::new();
    println!("— size baseline —");
    let size_pass = SizeRewrite::new();
    for i in 0..2 {
        let s = size_pass.run(&mut xag, &mut ctx);
        println!("size round {i}: {s} (capacity {})", xag.capacity());
    }
    xag = xag.cleanup();
    println!("— mc rewriting —");
    let mc_pass = McRewrite::new();
    for i in 0..30 {
        let s = if threads > 1 {
            mc_pass.run_parallel(&mut xag, &mut ctx, threads)
        } else {
            mc_pass.run(&mut xag, &mut ctx)
        };
        println!(
            "mc round {i}: {s} (capacity {}, db {})",
            xag.capacity(),
            ctx.db_size()
        );
        if s.rewrites_applied == 0 {
            break;
        }
    }
    if let Some(path) = json_path_from_args(&args) {
        let record = BenchRecord {
            bench: "debug_bench".to_string(),
            name: name.clone(),
            size_before,
            size_after: xag.num_gates(),
            depth_before,
            depth_after: xag.and_depth(),
            mc_before,
            mc_after: xag.num_ands(),
            wall_s: t0.elapsed().as_secs_f64(),
            threads,
            // The phase trace above: two size-baseline rounds, then up
            // to 30 mc rounds (early-exit when a round applies nothing).
            flow: "size(cut=6)*2;mc(cut=6)*30".to_string(),
        };
        write_bench_json(&path, std::slice::from_ref(&record)).expect("write --json output");
        println!("wrote 1 record to {}", path.display());
    }
}
