//! Developer tool: run the experiment flow phases on one named EPFL
//! benchmark with verbose progress, to localize pathological behaviour.

use xag_circuits::epfl::{epfl_suite, Scale};
use xag_mc::{McOptimizer, RewriteParams};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "div".into());
    let suite = epfl_suite(Scale::Reduced);
    let bench = suite
        .iter()
        .find(|b| b.name == name)
        .expect("unknown benchmark");
    let mut xag = bench.xag.cleanup();
    println!(
        "{name}: {} AND {} XOR ({} nodes)",
        xag.num_ands(),
        xag.num_xors(),
        xag.capacity()
    );
    println!("— size baseline —");
    let mut size_opt = McOptimizer::with_params(RewriteParams {
        max_rounds: 2,
        ..RewriteParams::size_baseline()
    });
    for i in 0..2 {
        let s = size_opt.run_once(&mut xag);
        println!("size round {i}: {s} (capacity {})", xag.capacity());
    }
    xag = xag.cleanup();
    println!("— mc rewriting —");
    let mut opt = McOptimizer::new();
    for i in 0..30 {
        let s = opt.run_once(&mut xag);
        println!(
            "mc round {i}: {s} (capacity {}, db {})",
            xag.capacity(),
            opt.db_size()
        );
        if s.rewrites_applied == 0 {
            break;
        }
    }
}
