//! Micro-benchmarks for the optimizer's hot path: cut enumeration, cut
//! functions, and classification.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin hotpath_bench [--alloc-check] [--json PATH]
//! ```
//!
//! For each workload (seeded fuzz networks, a reduced-lane Keccak-f, and
//! AES-128 — see [`xag_bench::hotpath::workloads`]) the binary times
//!
//! * `enum` — the current enumeration: dense arena, inline leaf arrays,
//!   and the fused one-sweep cut-function computation
//!   ([`xag_cuts::enumerate_cuts_for`] returns every cut *and* its truth
//!   table);
//! * `enum_legacy` — a faithful reimplementation of the pre-overhaul hot
//!   path ([`xag_bench::hotpath::legacy`]): `HashMap<NodeId, Vec<Cut>>`
//!   cut sets with heap-allocated leaf vectors, followed by a per-cut
//!   recursive cone traversal with a fresh `HashMap` memo per call;
//! * `speedup` — the ratio of the two medians (recorded in `wall_s` of
//!   the JSON row, so the perf trajectory files carry the measured
//!   speedup, not just two absolute times), plus a `speedup/geomean`
//!   summary row;
//! * `classify_cold` / `classify_warm` — affine classification of the
//!   ≤4-input cut functions from a cold cache, then the pure cache-hit
//!   path, which is dominated by truth-table hashing.
//!
//! Every run records how many heap allocations `enumerate_cuts_for`
//! performs (`allocs/*` rows); with `--alloc-check` it additionally
//! *asserts* the count stays O(log) in the number of cuts (vector
//! doubling only — zero allocations per cut), which is the overhaul's
//! allocation guarantee in executable form.
//!
//! The measurement loop itself lives in [`xag_bench::hotpath::run_hotpath`],
//! shared with the `bench_gate` CI gate so the gate replays exactly what
//! the committed trajectory recorded.

use xag_bench::hotpath::run_hotpath;
use xag_bench::{json_path_from_args, write_bench_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let alloc_check = args.iter().any(|a| a == "--alloc-check");
    let records = run_hotpath(5, alloc_check);
    if let Some(path) = json_path_from_args(&args) {
        write_bench_json(&path, &records).expect("write bench json");
        println!("wrote {} records to {}", records.len(), path.display());
    }
}
