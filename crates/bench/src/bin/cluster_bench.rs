//! Load benchmark for the `mc-cluster` router: M concurrent clients
//! drive an in-process cluster of K `mc-serve` backends through a real
//! router, and the run reports the throughput scaling curve over the
//! backend count plus the cache-affinity hit rate of affine routing
//! against the random-placement baseline.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xag-bench --bin cluster_bench \
//!     [--backends K] [--clients M] [--jobs J] [--workers W] [--flow SPEC] [--json PATH]
//! ```
//!
//! `--flow` takes any FlowSpec (alias or full spec, default `paper`), so
//! the scaling curves can be reproduced on custom flows; the `--json`
//! records carry the normalized spec.
//!
//! For each backend count `k` in `1..=K` the bench boots a fresh
//! cluster and runs two phases with all clients concurrent:
//!
//! * **cold** — client-disjoint seeds, every job computes on a backend;
//! * **warm** — the same submissions again; under affine routing every
//!   job should land on the backend that cached it.
//!
//! At the full backend count the warm phase is repeated against a
//! `random`-policy router over fresh backends: the drop in warm hit
//! rate (and throughput) is exactly what cache-affine scheduling buys.
//! With `--json PATH` one record per phase is written (`threads` carries
//! the backend count).

use std::sync::Arc;
use std::time::{Duration, Instant};

use mc_cluster::{RoutePolicy, Router, RouterConfig, RouterHandle};
use mc_serve::{Client, OptimizeRequest, ServeConfig, Server, ServerHandle};
use xag_bench::{json_path_from_args, write_bench_json, BenchRecord};
use xag_mc::FlowSpec;
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::write_bristol;

fn bristol_text(seed: u64, cfg: &FuzzConfig) -> String {
    let xag = random_xag(cfg, seed);
    let mut buf = Vec::new();
    write_bristol(&xag, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("bristol writer emits ASCII")
}

fn boot_cluster(
    backends: usize,
    workers: usize,
    policy: RoutePolicy,
) -> (RouterHandle, Vec<ServerHandle>) {
    let router = Router::bind(RouterConfig {
        policy,
        // Lenient health bounds: bench boxes may stall arbitrarily, and
        // a spuriously downed backend would corrupt the measurement.
        heartbeat_timeout: Duration::from_secs(60),
        miss_threshold: 100,
        ..RouterConfig::default()
    })
    .expect("bind router on an ephemeral port");
    let join = router.local_addr().to_string();
    let handles: Vec<ServerHandle> = (0..backends)
        .map(|_| {
            Server::bind(ServeConfig {
                workers,
                join: Some(join.clone()),
                heartbeat_interval: Duration::from_millis(100),
                // The warm phase needs the whole cold working set cached.
                cache_capacity: 4096,
                ..ServeConfig::default()
            })
            .expect("bind backend on an ephemeral port")
        })
        .collect();
    let mut probe = Client::connect(router.local_addr()).expect("connect probe");
    for _ in 0..500 {
        let up = probe
            .cluster_stats()
            .expect("cluster_stats")
            .backends
            .iter()
            .filter(|b| b.up)
            .count();
        if up >= backends {
            return (router, handles);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{backends} backend(s) never registered");
}

/// Runs one phase; returns `(wall seconds, cached responses, summed
/// before/after AND counts)`.
fn run_phase(
    addr: std::net::SocketAddr,
    circuits: &Arc<Vec<Vec<String>>>,
    flow: &FlowSpec,
) -> (f64, u64, usize, usize) {
    let t0 = Instant::now();
    let totals = std::thread::scope(|s| {
        let handles: Vec<_> = (0..circuits.len())
            .map(|c| {
                let circuits = Arc::clone(circuits);
                let flow = flow.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to router");
                    let mut cached = 0u64;
                    let mut before = 0usize;
                    let mut after = 0usize;
                    for circuit in &circuits[c] {
                        let result = client
                            .optimize(OptimizeRequest {
                                circuit: circuit.clone(),
                                flow: flow.clone(),
                                ..OptimizeRequest::default()
                            })
                            .expect("optimize request");
                        cached += result.cached as u64;
                        before += result.ands_before;
                        after += result.ands_after;
                    }
                    (cached, before, after)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0, 0), |acc, (c, b, a)| {
                (acc.0 + c, acc.1 + b, acc.2 + a)
            })
    });
    (t0.elapsed().as_secs_f64(), totals.0, totals.1, totals.2)
}

struct PhaseRow {
    name: String,
    wall_s: f64,
    ands_before: usize,
    ands_after: usize,
    backends: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let max_backends = flag("--backends", 3).max(1);
    let clients = flag("--clients", 4).max(1);
    let jobs = flag("--jobs", 8).max(1);
    let workers = flag("--workers", 2).max(1);
    let flow: FlowSpec = args
        .iter()
        .position(|a| a == "--flow")
        .and_then(|i| args.get(i + 1))
        .map(|text| FlowSpec::parse(text).expect("--flow takes a valid FlowSpec"))
        .unwrap_or_default();
    let total_jobs = (clients * jobs) as f64;

    // Client-disjoint seeds so the cold phase is all misses.
    let cfg = FuzzConfig::default();
    let circuits: Arc<Vec<Vec<String>>> = Arc::new(
        (0..clients)
            .map(|c| {
                (0..jobs)
                    .map(|j| bristol_text((c * 10_000 + j) as u64, &cfg))
                    .collect()
            })
            .collect(),
    );
    println!(
        "cluster_bench: {clients} clients × {jobs} jobs, {workers} workers/backend, \
         scaling 1..={max_backends} backends, flow {}",
        flow.normalized()
    );

    let mut rows: Vec<PhaseRow> = Vec::new();
    let mut scaling: Vec<(usize, f64, f64, f64)> = Vec::new();
    for k in 1..=max_backends {
        let (router, backends) = boot_cluster(k, workers, RoutePolicy::Affine);
        let addr = router.local_addr();
        let (cold_s, cold_cached, before, after) = run_phase(addr, &circuits, &flow);
        assert_eq!(cold_cached, 0, "cold phase must be all misses");
        let (warm_s, warm_cached, _, _) = run_phase(addr, &circuits, &flow);
        let warm_hit_rate = warm_cached as f64 / total_jobs;
        assert!(
            warm_cached == total_jobs as u64,
            "affine warm phase must be all hits (got {warm_cached}/{total_jobs})"
        );
        let mut probe = Client::connect(addr).expect("connect for stats");
        let cstats = probe.cluster_stats().expect("cluster_stats");
        println!(
            "k={k}: cold {:6.1} jobs/s, warm {:7.1} jobs/s, warm hits {:5.1}%, \
             affinity {:5.1}% ({} retried)",
            total_jobs / cold_s,
            total_jobs / warm_s,
            100.0 * warm_hit_rate,
            100.0 * cstats.affinity_rate(),
            cstats.jobs_retried,
        );
        scaling.push((k, total_jobs / cold_s, total_jobs / warm_s, warm_hit_rate));
        rows.push(PhaseRow {
            name: format!("cold_k{k}"),
            wall_s: cold_s,
            ands_before: before,
            ands_after: after,
            backends: k,
        });
        rows.push(PhaseRow {
            name: format!("warm_k{k}"),
            wall_s: warm_s,
            ands_before: before,
            ands_after: after,
            backends: k,
        });
        for b in backends {
            b.shutdown();
        }
        router.shutdown();
    }

    // The affinity-oblivious baseline at full width: same workload, a
    // `random`-policy router, fresh caches.
    let (router, backends) = boot_cluster(max_backends, workers, RoutePolicy::Random);
    let addr = router.local_addr();
    let (cold_s, _, before, after) = run_phase(addr, &circuits, &flow);
    let (warm_s, warm_cached, _, _) = run_phase(addr, &circuits, &flow);
    let random_hit_rate = warm_cached as f64 / total_jobs;
    let mut probe = Client::connect(addr).expect("connect for stats");
    let cstats = probe.cluster_stats().expect("cluster_stats");
    println!(
        "random baseline (k={max_backends}): cold {:6.1} jobs/s, warm {:7.1} jobs/s, \
         warm hits {:5.1}%, affinity {:5.1}%",
        total_jobs / cold_s,
        total_jobs / warm_s,
        100.0 * random_hit_rate,
        100.0 * cstats.affinity_rate(),
    );
    rows.push(PhaseRow {
        name: format!("warm_random_k{max_backends}"),
        wall_s: warm_s,
        ands_before: before,
        ands_after: after,
        backends: max_backends,
    });
    for b in backends {
        b.shutdown();
    }
    router.shutdown();

    println!("\nscaling curve (affine routing):");
    println!("  backends  cold jobs/s  warm jobs/s  warm hit rate");
    for (k, cold_rate, warm_rate, hit) in &scaling {
        println!(
            "  {k:>8}  {cold_rate:>11.1}  {warm_rate:>11.1}  {:>12.1}%",
            100.0 * hit
        );
    }
    if let Some((_, _, affine_warm, affine_hits)) = scaling.last() {
        println!(
            "affinity vs random at k={max_backends}: hit rate {:.1}% vs {:.1}%, \
             warm throughput {:.2}x",
            100.0 * affine_hits,
            100.0 * random_hit_rate,
            affine_warm / (total_jobs / warm_s).max(1e-9),
        );
    }

    if let Some(path) = json_path_from_args(&args) {
        let records: Vec<BenchRecord> = rows
            .iter()
            .map(|r| BenchRecord {
                bench: "cluster_bench".to_string(),
                name: r.name.clone(),
                size_before: clients * jobs,
                size_after: clients * jobs,
                depth_before: 0,
                depth_after: 0,
                mc_before: r.ands_before,
                mc_after: r.ands_after,
                wall_s: r.wall_s,
                threads: r.backends,
                flow: flow.normalized(),
            })
            .collect();
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote {} records to {}", records.len(), path.display());
    }
}
