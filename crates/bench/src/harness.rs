//! A minimal micro-benchmark harness (criterion stand-in, no external
//! dependencies).
//!
//! The bench targets under `benches/` are compiled with `harness = false`
//! and drive this module from their own `main`. Each measured function
//! runs once for warm-up and then `sample_size` timed iterations; the
//! report prints min / median / mean wall-clock times.
//!
//! The module also hosts the machine-readable side of the experiment
//! binaries: every bench bin accepts `--json <path>`
//! ([`json_path_from_args`]) and emits `BENCH_*.json`-style records
//! ([`BenchRecord`], [`write_bench_json`]) so the perf trajectory across
//! PRs can be consumed by tooling instead of scraped from tables.
//!
//! Environment knobs:
//!
//! * `MC_BENCH_SAMPLES` — overrides every group's sample size (e.g. `=3`
//!   for a smoke run).

use std::hint::black_box as std_black_box;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mc_serve::json::Json;

/// Opaque-value barrier, re-exported so bench targets don't reach into
/// `std::hint` themselves.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A named collection of measurements with a shared sample size.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
}

impl BenchGroup {
    /// Creates a group; `sample_size` defaults to 10 (or
    /// `MC_BENCH_SAMPLES`).
    pub fn new(name: &str) -> Self {
        let sample_size = std::env::var("MC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        println!("benchmark group: {name}");
        Self {
            name: name.to_string(),
            sample_size,
        }
    }

    /// Sets the number of timed iterations per function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("MC_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Measures `f`, printing one report line.
    pub fn bench_function<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &mut Self {
        let _ = self.bench_function_timed(name, f);
        self
    }

    /// Measures `f` like [`BenchGroup::bench_function`] and returns the
    /// median sample, so callers can derive ratios — e.g. the single- vs
    /// multi-thread speedup lines of the parallel rewriting benches.
    pub fn bench_function_timed<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        let _ = std_black_box(f()); // warm-up, untimed
        let mut times: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                let _ = std_black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {:<32} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} samples)",
            format!("{}/{}", self.name, name),
            min,
            median,
            mean,
            times.len()
        );
        median
    }

    /// Prints a derived ratio line (e.g. a parallel speedup) in the same
    /// indentation as the measurement lines.
    pub fn report_ratio(&mut self, name: &str, numerator: Duration, denominator: Duration) {
        let ratio = if denominator.as_nanos() > 0 {
            numerator.as_secs_f64() / denominator.as_secs_f64()
        } else {
            1.0
        };
        println!("  {:<32} {ratio:.2}x", format!("{}/{}", self.name, name));
    }

    /// Ends the group (parity with the criterion API; prints a blank
    /// line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// One machine-readable benchmark record: the metrics every experiment
/// binary can report uniformly (gate counts are totals, `mc_*` is the
/// AND count — the paper's objective — and `depth_*` the multiplicative
/// depth). Binaries for which a field is meaningless write 0 and say so
/// in their docs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The emitting binary (`table1`, `serve_bench`, …).
    pub bench: String,
    /// The row within the binary (benchmark name, phase, …).
    pub name: String,
    /// Total gates before optimization.
    pub size_before: usize,
    /// Total gates after optimization.
    pub size_after: usize,
    /// Multiplicative depth before optimization.
    pub depth_before: usize,
    /// Multiplicative depth after optimization.
    pub depth_after: usize,
    /// AND gates (multiplicative complexity) before optimization.
    pub mc_before: usize,
    /// AND gates after optimization.
    pub mc_after: usize,
    /// Wall-clock seconds of the measured work.
    pub wall_s: f64,
    /// Worker threads (or concurrent clients, for load benches) used.
    pub threads: usize,
    /// The normalized FlowSpec the record measured
    /// (`xag_mc::FlowSpec::normalized`), so rows from custom `--flow`
    /// runs are distinguishable and reproducible; empty for records that
    /// measure no flow (e.g. `db_stats`).
    pub flow: String,
}

/// Extracts the `--json <path>` argument the five experiment binaries
/// share; `None` when absent.
pub fn json_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

impl BenchRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".to_string(), Json::from(self.bench.as_str())),
            ("name".to_string(), Json::from(self.name.as_str())),
            ("size_before".to_string(), Json::from(self.size_before)),
            ("size_after".to_string(), Json::from(self.size_after)),
            ("depth_before".to_string(), Json::from(self.depth_before)),
            ("depth_after".to_string(), Json::from(self.depth_after)),
            ("mc_before".to_string(), Json::from(self.mc_before)),
            ("mc_after".to_string(), Json::from(self.mc_after)),
            ("wall_s".to_string(), Json::from(self.wall_s)),
            ("threads".to_string(), Json::from(self.threads)),
            ("flow".to_string(), Json::from(self.flow.as_str())),
        ])
    }
}

/// Writes the records as a JSON array of objects (the `BENCH_*.json`
/// shape), one record per line for diff-friendliness. Serialization goes
/// through [`mc_serve::json`] — the workspace's one JSON writer.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_bench_json(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "[")?;
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(file, "  {}{sep}", r.to_json().encode())?;
    }
    writeln!(file, "]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut g = BenchGroup::new("test");
        g.sample_size(2);
        let mut calls = 0usize;
        g.bench_function("noop", || {
            calls += 1;
            black_box(calls)
        });
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
        g.finish();
    }

    #[test]
    fn json_arg_extraction() {
        let args: Vec<String> = ["table1", "--threads", "4", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(json_path_from_args(&args), Some(PathBuf::from("out.json")));
        assert_eq!(json_path_from_args(&args[..3]), None);
        let dangling: Vec<String> = vec!["--json".to_string()];
        assert_eq!(json_path_from_args(&dangling), None);
    }

    #[test]
    fn bench_json_is_valid_and_complete() {
        let dir = std::env::temp_dir().join(format!("mc-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        let records = vec![
            BenchRecord {
                bench: "table1".to_string(),
                name: "adder \"quoted\"".to_string(),
                size_before: 160,
                size_after: 120,
                depth_before: 32,
                depth_after: 30,
                mc_before: 94,
                mc_after: 32,
                wall_s: 1.25,
                threads: 4,
                flow: "{mc(cut=4);mc(cut=6)}*".to_string(),
            },
            BenchRecord {
                bench: "table1".to_string(),
                name: "bar".to_string(),
                size_before: 1,
                size_after: 1,
                depth_before: 0,
                depth_after: 0,
                mc_before: 0,
                mc_after: 0,
                wall_s: 0.0,
                threads: 1,
                flow: String::new(),
            },
        ];
        write_bench_json(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"bench\"").count(), 2);
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"mc_after\":32"));
        assert!(text.contains("\"wall_s\":1.25"));
        assert!(text.contains("\"flow\":\"{mc(cut=4);mc(cut=6)}*\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
