//! A minimal micro-benchmark harness (criterion stand-in, no external
//! dependencies).
//!
//! The bench targets under `benches/` are compiled with `harness = false`
//! and drive this module from their own `main`. Each measured function
//! runs once for warm-up and then `sample_size` timed iterations; the
//! report prints min / median / mean wall-clock times.
//!
//! Environment knobs:
//!
//! * `MC_BENCH_SAMPLES` — overrides every group's sample size (e.g. `=3`
//!   for a smoke run).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value barrier, re-exported so bench targets don't reach into
/// `std::hint` themselves.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A named collection of measurements with a shared sample size.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
}

impl BenchGroup {
    /// Creates a group; `sample_size` defaults to 10 (or
    /// `MC_BENCH_SAMPLES`).
    pub fn new(name: &str) -> Self {
        let sample_size = std::env::var("MC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        println!("benchmark group: {name}");
        Self {
            name: name.to_string(),
            sample_size,
        }
    }

    /// Sets the number of timed iterations per function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("MC_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Measures `f`, printing one report line.
    pub fn bench_function<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &mut Self {
        let _ = self.bench_function_timed(name, f);
        self
    }

    /// Measures `f` like [`BenchGroup::bench_function`] and returns the
    /// median sample, so callers can derive ratios — e.g. the single- vs
    /// multi-thread speedup lines of the parallel rewriting benches.
    pub fn bench_function_timed<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        let _ = std_black_box(f()); // warm-up, untimed
        let mut times: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                let _ = std_black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {:<32} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} samples)",
            format!("{}/{}", self.name, name),
            min,
            median,
            mean,
            times.len()
        );
        median
    }

    /// Prints a derived ratio line (e.g. a parallel speedup) in the same
    /// indentation as the measurement lines.
    pub fn report_ratio(&mut self, name: &str, numerator: Duration, denominator: Duration) {
        let ratio = if denominator.as_nanos() > 0 {
            numerator.as_secs_f64() / denominator.as_secs_f64()
        } else {
            1.0
        };
        println!("  {:<32} {ratio:.2}x", format!("{}/{}", self.name, name));
    }

    /// Ends the group (parity with the criterion API; prints a blank
    /// line).
    pub fn finish(&mut self) {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut g = BenchGroup::new("test");
        g.sample_size(2);
        let mut calls = 0usize;
        g.bench_function("noop", || {
            calls += 1;
            black_box(calls)
        });
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
        g.finish();
    }
}
