//! Experiment harness for the DAC'19 reproduction.
//!
//! The [`experiment`] module runs the paper's flow on a benchmark circuit
//! through the pass-pipeline API: generic size rewriting produces the
//! "Initial" column (the paper uses an ABC script; we use the unit-cost
//! rewriter), one [`xag_mc::McRewrite`] pass gives the "One round"
//! columns, and [`xag_mc::Pipeline::paper_flow`] runs until convergence
//! ("Repeat until convergence" columns). The `table1` and `table2`
//! binaries print the corresponding tables.
//!
//! The [`harness`] module is the workspace's dependency-free criterion
//! stand-in used by the targets under `benches/`. The [`hotpath`] module
//! holds the shared machinery of the hot-path microbenchmarks (workload
//! set, pre-overhaul baseline, counting allocator), and [`gate`] the
//! comparator the `bench_gate` binary uses to hold every PR to the
//! committed `BENCH_*.json` perf trajectory.

pub mod experiment;
pub mod gate;
pub mod harness;
pub mod hotpath;

pub use experiment::{
    normalized_geomean, run_flow, run_flow_threads, run_flow_with, FlowResult, ParallelResult,
    TableRow,
};
pub use gate::{compare, read_bench_json, GateTolerance};
pub use harness::{json_path_from_args, write_bench_json, BenchRecord};
