//! Experiment harness for the DAC'19 reproduction.
//!
//! The [`experiment`] module runs the paper's flow on a benchmark circuit:
//! generic size optimization to produce the "Initial" column (the paper
//! uses an ABC script; we use the unit-cost rewriter), then one round of
//! multiplicative-complexity rewriting ("One round" columns), then
//! rewriting until convergence ("Repeat until convergence" columns). The
//! `table1` and `table2` binaries print the corresponding tables;
//! `EXPERIMENTS.md` records a paper-vs-measured comparison.

pub mod experiment;

pub use experiment::{normalized_geomean, run_flow, FlowResult, TableRow};
