//! Bounded exact SLP search proving multiplicative complexity ≤ 2.
//!
//! An XAG with two AND gates computes `f = L₀ ⊕ c₁g₁ ⊕ c₂g₂` where
//! `g₁ = A·B` with `A, B` affine in the inputs, and `g₂ = C·D` with `C, D`
//! affine in the inputs *and* `g₁`. The search enumerates `g₁` candidates
//! (pairs of affine forms), then `g₂` candidates over the extended span,
//! and checks membership of `f` in the final affine span by Gaussian
//! elimination over 64-bit truth tables.
//!
//! Functions of degree ≤ 2 never reach this module (the symplectic
//! decomposition is already optimal); degree > 4 cannot have MC ≤ 2, so the
//! caller only invokes the search for degree-3/4 functions of few
//! variables.

use xag_network::{FragRef, XagFragment};
use xag_tt::Tt;

/// Affine span with combination tracking: each basis vector remembers which
/// original generators XOR to it.
struct Span {
    /// `(reduced truth table, generator combination mask)` pairs.
    basis: Vec<(u64, u32)>,
}

impl Span {
    fn new() -> Self {
        Span { basis: Vec::new() }
    }

    fn reduce(&self, mut t: u64, mut combo: u32) -> (u64, u32) {
        for &(b, c) in &self.basis {
            let high = 63 - b.leading_zeros();
            if t >> high & 1 == 1 {
                t ^= b;
                combo ^= c;
            }
        }
        (t, combo)
    }

    fn insert(&mut self, t: u64, combo: u32) {
        let (t, combo) = self.reduce(t, combo);
        if t != 0 {
            self.basis.push((t, combo));
            self.basis.sort_by_key(|e| std::cmp::Reverse(e.0));
        }
    }

    /// If `t` is in the span, returns the generator combination producing it.
    #[allow(dead_code)] // kept as the Span API counterpart of `reduce`
    fn contains(&self, t: u64) -> Option<u32> {
        let (r, combo) = self.reduce(t, 0);
        (r == 0).then_some(combo)
    }
}

/// Truth tables of all affine combinations indexed by mask over generators
/// `[1, x₀, …, x_{n-1}]` (bit 0 = constant).
fn affine_tables(n: usize) -> Vec<u64> {
    let gens: Vec<u64> = std::iter::once(Tt::one(n).bits())
        .chain((0..n).map(|i| Tt::projection(i, n).bits()))
        .collect();
    let m = gens.len();
    let mut out = vec![0u64; 1 << m];
    for mask in 1usize..(1 << m) {
        let low = mask & (mask - 1);
        let bit = mask ^ low;
        out[mask] = out[low] ^ gens[bit.trailing_zeros() as usize];
    }
    out
}

/// Builds the linear-form fragment reference for a mask over
/// `[const, x₀…x_{n-1}, g₁, g₂]`.
fn form_ref(
    frag: &mut XagFragment,
    n: usize,
    mask: u32,
    g1: Option<FragRef>,
    g2: Option<FragRef>,
) -> FragRef {
    let mut refs: Vec<FragRef> = Vec::new();
    for i in 0..n {
        if (mask >> (i + 1)) & 1 == 1 {
            refs.push(XagFragment::input(i));
        }
    }
    if (mask >> (n + 1)) & 1 == 1 {
        refs.push(g1.expect("mask references g1"));
    }
    if (mask >> (n + 2)) & 1 == 1 {
        refs.push(g2.expect("mask references g2"));
    }
    let r = frag.xor_many(&refs);
    r.complement_if(mask & 1 == 1)
}

/// Searches for an implementation of `f` with at most two AND gates.
/// Returns `None` if none exists (or none is found within the enumerated
/// shape, which is exhaustive for MC ≤ 2).
#[allow(clippy::needless_range_loop)] // w/z index arithmetic drives the skip conditions
pub fn search_mc2(f: Tt) -> Option<XagFragment> {
    let n = f.vars();
    let tables = affine_tables(n);
    let num_affine = tables.len(); // 2^(n+1)
    let fb = f.bits();

    // Level-1 candidates: gate g1 = tables[u] & tables[v]. Skip masks whose
    // linear part is empty (constants) and canonical-order duplicates.
    let linear_part = |mask: usize| mask >> 1;
    for u in 2..num_affine {
        if linear_part(u) == 0 {
            continue;
        }
        for v in (u + 1)..num_affine {
            if linear_part(v) == 0 || linear_part(u) == linear_part(v) {
                // Same linear part means v = u or v = !u: trivial products.
                continue;
            }
            let g1 = tables[u] & tables[v];

            // Span of {1, x₀…x_{n-1}, g1}, built once per g1 candidate.
            let mut span1 = Span::new();
            span1.insert(Tt::one(n).bits(), 1);
            for i in 0..n {
                span1.insert(Tt::projection(i, n).bits(), 1 << (i + 1));
            }
            span1.insert(g1, 1 << (n + 1));

            // Fast path: one gate suffices if f is already in the span.
            let (f_res, f_combo) = span1.reduce(fb, 0);
            if f_res == 0 {
                return Some(build(f, n, &tables, (u, v), None, f_combo));
            }

            // Level 2: operands over span{affine, g1}. Membership of f in
            // span{span1, g2} reduces to `reduce(g2) == reduce(f)`.
            let operand: Vec<u64> = (0..2 * num_affine)
                .map(|w| tables[w % num_affine] ^ if w >= num_affine { g1 } else { 0 })
                .collect();
            for w in 2..(2 * num_affine) {
                if linear_part(w % num_affine) == 0 && w < num_affine {
                    continue;
                }
                let wt = operand[w];
                for z in (w + 1)..(2 * num_affine) {
                    if linear_part(z % num_affine) == 0 && z < num_affine {
                        continue;
                    }
                    let g2 = wt & operand[z];
                    let (g_res, g_combo) = span1.reduce(g2, 0);
                    if g_res == f_res {
                        let combo = f_combo ^ g_combo ^ (1 << (n + 2));
                        let lvl2 = ((w as u32) << 16) | z as u32;
                        return Some(build(f, n, &tables, (u, v), Some(lvl2), combo));
                    }
                }
            }
        }
    }
    None
}

/// Materializes a found solution into a fragment.
fn build(
    f: Tt,
    n: usize,
    tables: &[u64],
    g1_masks: (usize, usize),
    g2_packed: Option<u32>,
    combo: u32,
) -> XagFragment {
    let num_affine = tables.len();
    let mut frag = XagFragment::new(n);
    let a = form_ref(&mut frag, n, g1_masks.0 as u32, None, None);
    let b = form_ref(&mut frag, n, g1_masks.1 as u32, None, None);
    let g1 = frag.and(a, b);
    let g2 = g2_packed.map(|packed| {
        let (w, z) = ((packed >> 16) as usize, (packed & 0xffff) as usize);
        let (wa, wg) = (w % num_affine, w / num_affine);
        let (za, zg) = (z % num_affine, z / num_affine);
        let wmask = wa as u32 | if wg == 1 { 1 << (n + 1) } else { 0 };
        let zmask = za as u32 | if zg == 1 { 1 << (n + 1) } else { 0 };
        let c = form_ref(&mut frag, n, wmask, Some(g1), None);
        let d = form_ref(&mut frag, n, zmask, Some(g1), None);
        frag.and(c, d)
    });
    let out = form_ref(&mut frag, n, combo, Some(g1), g2);
    frag.set_output(out);
    debug_assert_eq!(frag.eval_tt(), f, "exact search reconstruction mismatch");
    frag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_three_of_three_vars() {
        // x0x1x2 has MC 2.
        let f = Tt::from_fn(3, |m| m == 7);
        let frag = search_mc2(f).expect("AND3 has MC 2");
        assert_eq!(frag.num_ands(), 2);
        assert_eq!(frag.eval_tt(), f);
    }

    #[test]
    fn finds_compositions_using_g1() {
        // f = (x0 ∧ x1) ∧ (x2 ⊕ x0x1) style functions still have MC 2.
        let x0 = Tt::projection(0, 3);
        let x1 = Tt::projection(1, 3);
        let x2 = Tt::projection(2, 3);
        let g1 = x0 & x1;
        let f = g1 & (x2 ^ g1);
        let frag = search_mc2(f);
        if let Some(frag) = frag {
            assert_eq!(frag.eval_tt(), f);
            assert!(frag.num_ands() <= 2);
        } else {
            // f = g1 & (x2 ^ g1) = g1 & x2 ^ g1... must be findable; fail.
            panic!("expected an MC ≤ 2 implementation");
        }
    }

    #[test]
    fn rejects_high_complexity() {
        // AND of 4 variables has MC 3 — the search must fail.
        let f = Tt::from_fn(4, |m| m == 15);
        assert!(search_mc2(f).is_none());
    }

    #[test]
    fn four_var_degree_three_examples() {
        // x0x1x2 ⊕ x3 over 4 vars: still MC 2 (affine tail is free).
        let f = Tt::from_fn(4, |m| ((m & 7) == 7) ^ ((m >> 3) & 1 == 1));
        let frag = search_mc2(f).expect("MC 2");
        assert_eq!(frag.eval_tt(), f);
        assert_eq!(frag.num_ands(), 2);
    }
}
