//! Synthesis of functions with more than six variables.
//!
//! Wide table-defined logic (AES S-box coordinates are 8-input functions)
//! is decomposed by positive Davio expansion on the *top* variable until
//! the six-variable kernel takes over. Affine sub-functions are detected at
//! every level so that e.g. wide parities stay AND-free.

use xag_network::{FragRef, XagFragment};
use xag_tt::DynTt;

use crate::Synthesizer;

/// Recursively synthesizes a dynamic truth table. See
/// [`Synthesizer::synthesize_wide`].
pub fn synthesize(s: &mut Synthesizer, f: &DynTt) -> XagFragment {
    assert!(f.vars() <= 16, "wide synthesis limited to 16 variables");
    if let Some(tt) = f.to_tt() {
        return s.synthesize(tt);
    }
    let n = f.vars();
    if let Some((mask, constant)) = f.affine_decomposition() {
        let mut frag = XagFragment::new(n);
        let refs: Vec<FragRef> = (0..n)
            .filter(|i| (mask >> i) & 1 == 1)
            .map(XagFragment::input)
            .collect();
        let out = frag.xor_many(&refs);
        frag.set_output(out.complement_if(constant));
        return frag;
    }

    let top = n - 1;
    let f0 = f.top_cofactor0();
    let f1 = f.top_cofactor1();
    let d = f0.xor(&f1);

    let identity: Vec<usize> = (0..top).collect();
    let build = |s: &mut Synthesizer, base_fn: &DynTt, positive: bool| -> XagFragment {
        let frag_base = synthesize(s, base_fn).with_inputs(n, &identity);
        let xi = XagFragment::input(top).complement_if(!positive);
        let mut frag = XagFragment::new(n);
        let base = frag.append_fragment(&frag_base);
        let out = if d.is_zero() {
            base
        } else if d.is_one() {
            frag.xor(base, xi)
        } else {
            let fragd = synthesize(s, &d).with_inputs(n, &identity);
            let dref = frag.append_fragment(&fragd);
            let prod = frag.and(xi, dref);
            frag.xor(base, prod)
        };
        frag.set_output(out);
        frag
    };
    let pos = build(s, &f0, true);
    let neg = build(s, &f1, false);
    if pos.num_ands() <= neg.num_ands() {
        pos
    } else {
        neg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::Xag;

    fn check_wide(f: &DynTt, max_ands: usize) {
        let mut s = Synthesizer::new();
        let frag = synthesize(&mut s, f);
        assert!(frag.num_ands() <= max_ands, "used {}", frag.num_ands());
        // Verify by network simulation on every minterm.
        let mut xag = Xag::new();
        let ins: Vec<_> = (0..f.vars()).map(|_| xag.input()).collect();
        let out = frag.instantiate(&mut xag, &ins);
        xag.output(out);
        for m in 0..(1u64 << f.vars()) {
            assert_eq!(xag.evaluate(m)[0], f.eval(m), "minterm {m}");
        }
    }

    #[test]
    fn wide_parity_is_free() {
        let f = DynTt::from_fn(8, |m| m.count_ones() % 2 == 1);
        check_wide(&f, 0);
    }

    #[test]
    fn wide_and_chain() {
        let f = DynTt::from_fn(8, |m| m == 255);
        check_wide(&f, 7);
    }

    #[test]
    fn wide_threshold_function() {
        let f = DynTt::from_fn(7, |m| m.count_ones() >= 4);
        check_wide(&f, 40);
    }

    #[test]
    fn sbox_like_function() {
        // A nonlinear 8-input function mixing arithmetic and bit operations,
        // resembling an S-box coordinate.
        let f = DynTt::from_fn(8, |m| {
            let y = m.wrapping_mul(0x1d).wrapping_add(0x63) ^ (m >> 3);
            (y >> 2) & 1 == 1
        });
        check_wide(&f, 60);
    }
}
