//! Optimal synthesis of quadratic (ANF degree ≤ 2) functions.
//!
//! A Boolean function of algebraic degree two is an XOR of products
//! `L₁·L₂ ⊕ L₃·L₄ ⊕ … ⊕ linear part` where the `L` are linear forms. The
//! minimum number of products equals half the rank of the associated
//! alternating bilinear form (Boyar–Peralta), and a symplectic
//! Gram–Schmidt pass achieves it: repeatedly pick a quadratic term
//! `x_i x_j`, split off the product `(∂Q/∂x_i)·(∂Q/∂x_j)`, and subtract its
//! expansion. Every iteration reduces the rank by exactly two.
//!
//! This is the workhorse of the whole flow: majority, MUX, and the carry
//! functions that dominate arithmetic circuits are all quadratic, so their
//! database entries are *provably* MC-optimal.

use xag_network::{FragRef, XagFragment};
use xag_tt::Tt;

/// Adjacency-matrix representation of the quadratic part of an ANF: bit `j`
/// of `adj[i]` is the coefficient of `x_i x_j` (symmetric, zero diagonal).
fn quadratic_adjacency(f: Tt) -> ([u8; 6], u64, bool) {
    let anf = f.anf();
    let n = f.vars();
    let mut adj = [0u8; 6];
    let mut linear = 0u64;
    for s in 0..(1u64 << n) {
        if (anf >> s) & 1 == 0 {
            continue;
        }
        match s.count_ones() {
            0 | 1 => {
                if s.count_ones() == 1 {
                    linear |= s;
                }
            }
            2 => {
                let i = s.trailing_zeros() as usize;
                let j = (63 - s.leading_zeros()) as usize;
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
            _ => panic!("quadratic synthesis requires degree ≤ 2"),
        }
    }
    (adj, linear, anf & 1 == 1)
}

/// Rank of the quadratic part of `f` (an even number; `rank/2` is the exact
/// multiplicative complexity of a degree-2 function).
///
/// # Panics
///
/// Panics if `f` has degree greater than two.
pub fn quadratic_rank(f: Tt) -> usize {
    let (mut adj, _, _) = quadratic_adjacency(f);
    let n = f.vars();
    // Gaussian elimination on the GF(2) symmetric matrix.
    let mut rank = 0;
    let mut rows: Vec<u8> = (0..n).map(|i| adj[i]).collect();
    for col in 0..n {
        if let Some(pivot) = (0..rows.len()).find(|&r| (rows[r] >> col) & 1 == 1) {
            let p = rows.remove(pivot);
            rank += 1;
            for r in rows.iter_mut() {
                if (*r >> col) & 1 == 1 {
                    *r ^= p;
                }
            }
        }
    }
    let _ = &mut adj;
    rank
}

/// Synthesizes a degree ≤ 2 function with exactly `rank/2` AND gates.
///
/// # Panics
///
/// Panics if `f` has degree greater than two.
pub fn synthesize(f: Tt) -> XagFragment {
    let n = f.vars();
    let (mut adj, mut linear, constant) = quadratic_adjacency(f);

    // Symplectic reduction: collect (L1, L2) linear-form masks per product.
    let mut products: Vec<(u64, u64)> = Vec::new();
    // Find any remaining quadratic term x_i x_j.
    while let Some(i) = (0..n).find(|&i| adj[i] != 0) {
        let l1 = adj[i] as u64; // ∂Q/∂x_i
        let j = adj[i].trailing_zeros() as usize;
        let l2 = adj[j] as u64; // ∂Q/∂x_j
        products.push((l1, l2));
        // Subtract the expansion of L1·L2 = Σ_{a∈L1, b∈L2} x_a x_b:
        // unordered pair {a,b} toggles iff exactly one of (a∈L1,b∈L2),
        // (b∈L1,a∈L2) holds; a == b contributes the linear term x_a.
        for a in 0..n {
            for b in (a + 1)..n {
                let fwd = ((l1 >> a) & 1) & ((l2 >> b) & 1);
                let bwd = ((l1 >> b) & 1) & ((l2 >> a) & 1);
                if fwd ^ bwd == 1 {
                    adj[a] ^= 1 << b;
                    adj[b] ^= 1 << a;
                }
            }
            if ((l1 >> a) & 1) & ((l2 >> a) & 1) == 1 {
                linear ^= 1 << a;
            }
        }
    }

    // Emit the fragment: products of linear forms, XORed with the remaining
    // linear part.
    let mut frag = XagFragment::new(n);
    let linear_form = |frag: &mut XagFragment, mask: u64| -> FragRef {
        let refs: Vec<FragRef> = (0..n)
            .filter(|&k| (mask >> k) & 1 == 1)
            .map(XagFragment::input)
            .collect();
        frag.xor_many(&refs)
    };
    let mut terms: Vec<FragRef> = Vec::new();
    for &(l1, l2) in &products {
        let a = linear_form(&mut frag, l1);
        let b = linear_form(&mut frag, l2);
        terms.push(frag.and(a, b));
    }
    for k in 0..n {
        if (linear >> k) & 1 == 1 {
            terms.push(XagFragment::input(k));
        }
    }
    let out = frag.xor_many(&terms);
    frag.set_output(out.complement_if(constant));
    frag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_rank_two() {
        let maj = Tt::from_bits(0xe8, 3);
        assert_eq!(quadratic_rank(maj), 2);
        let frag = synthesize(maj);
        assert_eq!(frag.num_ands(), 1);
        assert_eq!(frag.eval_tt(), maj);
    }

    #[test]
    fn simple_product() {
        let f = Tt::projection(0, 2) & Tt::projection(1, 2);
        let frag = synthesize(f);
        assert_eq!(frag.num_ands(), 1);
        assert_eq!(frag.eval_tt(), f);
    }

    #[test]
    fn inner_product_function() {
        // x0x1 ⊕ x2x3 ⊕ x4x5: rank 6, MC 3.
        let f = Tt::from_fn(6, |m| {
            let p = (m & (m >> 1)) & 0b010101;
            (p.count_ones() % 2) == 1
        });
        assert_eq!(f.degree(), 2);
        assert_eq!(quadratic_rank(f), 6);
        let frag = synthesize(f);
        assert_eq!(frag.num_ands(), 3);
        assert_eq!(frag.eval_tt(), f);
    }

    #[test]
    fn dense_quadratic() {
        // Complete graph on 5 vertices plus linear tail.
        let mut anf = 0u64;
        for i in 0..5u64 {
            for j in (i + 1)..5 {
                anf |= 1 << ((1 << i) | (1 << j));
            }
        }
        anf |= 1 << (1 << 2); // + x2
        anf |= 1; // + 1
        let f = Tt::from_anf(anf, 5);
        assert_eq!(f.degree(), 2);
        let frag = synthesize(f);
        assert_eq!(frag.eval_tt(), f);
        assert_eq!(frag.num_ands(), quadratic_rank(f) / 2);
    }

    #[test]
    fn affine_input_gives_zero_products() {
        let f = Tt::projection(0, 4) ^ Tt::projection(3, 4);
        let frag = synthesize(f);
        assert_eq!(frag.num_ands(), 0);
        assert_eq!(frag.eval_tt(), f);
    }
}
