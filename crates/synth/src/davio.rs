//! Davio-decomposition fallback for functions above degree two.
//!
//! Positive Davio expansion: `f = f₀ ⊕ x_i · ∂f/∂x_i`, where
//! `f₀ = f|_{x_i=0}` and the Boolean difference `∂f/∂x_i = f₀ ⊕ f₁`. The
//! expansion costs one AND gate plus the cost of the two sub-functions,
//! both of which have smaller support; the recursion bottoms out in the
//! affine / quadratic / exact-search layers of the synthesizer. All
//! variables are tried and the cheapest decomposition wins (memoization in
//! the synthesizer keeps this polynomial in practice).

use xag_network::XagFragment;
use xag_tt::Tt;

use crate::Synthesizer;

/// Synthesizes `f` (degree ≥ 3) by the best positive-Davio split.
///
/// # Panics
///
/// Panics if `f` is constant (callers handle affine functions earlier).
pub fn synthesize(s: &mut Synthesizer, f: Tt) -> XagFragment {
    let n = f.vars();
    let mut best: Option<XagFragment> = None;
    for i in 0..n {
        if !f.depends_on(i) {
            continue;
        }
        let d = f.derivative(i);
        let fragd = s.synth_inner(d);
        // Positive Davio (f = f₀ ⊕ x_i·d) and negative Davio
        // (f = f₁ ⊕ !x_i·d): OR-like functions favour the negative form
        // because their 1-cofactor is constant.
        for positive in [true, false] {
            let base_fn = if positive {
                f.cofactor0(i)
            } else {
                f.cofactor1(i)
            };
            let frag_base = s.synth_inner(base_fn);
            let xi = XagFragment::input(i).complement_if(!positive);
            let mut frag = XagFragment::new(n);
            let base = frag.append_fragment(&frag_base);
            let out = if d.is_one() {
                // x_i·1 (or !x_i·1) is an XOR away: no AND gate needed.
                frag.xor(base, xi)
            } else {
                let dref = frag.append_fragment(&fragd);
                let prod = frag.and(xi, dref);
                frag.xor(base, prod)
            };
            frag.set_output(out);
            if best
                .as_ref()
                .map(|b| frag.num_ands() < b.num_ands())
                .unwrap_or(true)
            {
                best = Some(frag);
            }
        }
    }
    best.expect("non-constant function must depend on some variable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_five_function() {
        let mut s = Synthesizer::new();
        // AND of 5 variables XOR a parity tail.
        let f = Tt::from_fn(5, |m| (m == 31) ^ (m.count_ones() % 2 == 1));
        let frag = s.synthesize(f);
        assert_eq!(frag.eval_tt(), f);
        assert!(frag.num_ands() <= 6, "used {}", frag.num_ands());
    }

    #[test]
    fn six_var_random_functions_roundtrip() {
        let mut s = Synthesizer::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..40 {
            state = state
                .rotate_left(17)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1);
            let f = Tt::from_bits(state, 6);
            let frag = s.synthesize(f);
            assert_eq!(frag.eval_tt(), f);
            // Loose sanity bound: random 6-var functions synthesize with a
            // bounded number of ANDs (true MC max is 6; the heuristic ladder
            // stays within a small constant of that).
            assert!(frag.num_ands() <= 18, "used {}", frag.num_ands());
        }
    }
}
