//! Multiplicative-complexity-oriented synthesis of Boolean functions.
//!
//! The DAC'19 flow relies on a database that maps every affine-class
//! representative (up to six inputs) to an XAG with the *minimum* number of
//! AND gates, taken from the NIST SLP collection. This crate is the
//! from-scratch replacement for that database: given a truth table it
//! produces an [`XagFragment`] with as few AND gates as this implementation
//! can establish, using a ladder of techniques:
//!
//! 1. **Affine functions** — zero AND gates, by construction (exact);
//! 2. **Quadratic functions** (ANF degree 2) — a symplectic (Gram–Schmidt
//!    style) decomposition into `rank/2` products of linear forms, which is
//!    provably MC-optimal for this class;
//! 3. **Bounded exact search** — a depth-first SLP search proving MC ≤ 2
//!    where feasible (degree ≤ 4, small variable counts);
//! 4. **Davio recursion** — `f = f₀ ⊕ x_i · ∂f/∂x_i` on the best variable,
//!    with memoization, as the general upper-bound fallback;
//! 5. **Wide functions** (more than six inputs, e.g. AES S-box coordinates)
//!    — top-variable Davio recursion on dynamic truth tables down to the
//!    six-variable kernel.
//!
//! Every produced fragment is verified against its target truth table
//! before being returned (and cached).
//!
//! # Examples
//!
//! ```
//! use xag_synth::Synthesizer;
//! use xag_tt::Tt;
//!
//! let mut synth = Synthesizer::new();
//! // Majority of three: multiplicative complexity 1 (paper Example 3.1).
//! let frag = synth.synthesize(Tt::from_bits(0xe8, 3));
//! assert_eq!(frag.num_ands(), 1);
//! assert_eq!(frag.eval_tt().bits(), 0xe8);
//! ```

use xag_affine::AffineClassifier;
use xag_network::XagFragment;
use xag_tt::hash::FxHashMap;
use xag_tt::{DynTt, Tt};

mod davio;
mod exact;
mod quadratic;
mod wide;

pub use quadratic::quadratic_rank;

/// Tuning knobs for the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Run the exact MC ≤ 2 SLP search for functions of degree 3–4 with at
    /// most this many (support) variables. `0` disables the search.
    /// The search is exponential in this parameter; 4 is a good default,
    /// 5 buys a few better database entries at a noticeable cache-miss
    /// cost, 6 is usually too slow.
    pub exact_search_max_vars: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            exact_search_max_vars: 4,
        }
    }
}

/// Fragment synthesizer with a per-instance memoization cache.
///
/// The cache plays the role of the paper's `XAG_DB`: each (pseudo-)
/// representative is synthesized at most once per process.
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    config: SynthConfig,
    cache: FxHashMap<Tt, XagFragment>,
    classifier: AffineClassifier,
}

impl Synthesizer {
    /// Creates a synthesizer with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a synthesizer with a custom configuration.
    pub fn with_config(config: SynthConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Synthesizes a fragment computing `f` over `f.vars()` inputs,
    /// minimizing AND gates. The result is cached and verified against `f`.
    pub fn synthesize(&mut self, f: Tt) -> XagFragment {
        let frag = self.synth_inner(f);
        debug_assert_eq!(frag.eval_tt(), f, "synthesized fragment mismatch");
        frag
    }

    /// An upper bound on the multiplicative complexity of `f` (the AND count
    /// of the synthesized fragment).
    pub fn mc_upper_bound(&mut self, f: Tt) -> usize {
        self.synthesize(f).num_ands()
    }

    /// Clones the synthesizer for a worker thread, with statistics reset
    /// (see [`AffineClassifier::fork`]).
    pub fn fork(&self) -> Synthesizer {
        Synthesizer {
            config: self.config,
            cache: self.cache.clone(),
            classifier: self.classifier.fork(),
        }
    }

    /// Merges a fork's cache into this one. Synthesis is deterministic, so
    /// equal keys carry equal fragments and merge order does not matter;
    /// existing entries are kept. Used to fold worker-local synthesizers
    /// back into a shared one after a parallel rewriting round.
    pub fn absorb(&mut self, other: Synthesizer) {
        for (f, frag) in other.cache {
            self.cache.entry(f).or_insert(frag);
        }
        self.classifier.absorb(other.classifier);
    }

    /// Synthesizes a fragment for a function of more than six variables by
    /// top-variable Davio recursion down to the six-variable kernel.
    ///
    /// # Panics
    ///
    /// Panics if `f` has more than 16 variables (table size 2¹⁶ words).
    pub fn synthesize_wide(&mut self, f: &DynTt) -> XagFragment {
        wide::synthesize(self, f)
    }

    pub(crate) fn synth_inner(&mut self, f: Tt) -> XagFragment {
        if f.is_constant() {
            return XagFragment::constant(f.vars(), f.is_one());
        }
        // Normalize to the support and canonical polarity before the cache.
        let (g, map) = f.shrink_to_support();
        if g.vars() != f.vars() {
            let inner = self.synth_inner(g);
            return inner.with_inputs(f.vars(), &map);
        }
        if let Some(hit) = self.cache.get(&f) {
            return hit.clone();
        }
        // cost(f) == cost(!f): canonicalize polarity on the ANF constant.
        if f.anf() & 1 == 1 {
            let inner = self.synth_inner(!f);
            let frag = inner.complemented();
            self.cache.insert(f, frag.clone());
            return frag;
        }

        let frag = self.synth_core(f);
        debug_assert_eq!(frag.eval_tt(), f);
        self.cache.insert(f, frag.clone());
        frag
    }

    fn synth_core(&mut self, f: Tt) -> XagFragment {
        let degree = f.degree();
        if degree <= 1 {
            return affine_fragment(f);
        }
        if degree == 2 {
            return quadratic::synthesize(f);
        }
        // Multiplicative complexity is affine-invariant: synthesize the
        // class representative (sparser, often lower apparent complexity)
        // and replay the operations as free XOR/NOT/wiring gates. The exact
        // classifier covers up to four variables.
        if f.vars() <= 4 {
            let c = self.classifier.classify(f);
            // Guard against ping-ponging with the polarity canonicalization
            // in `synth_inner`: when the representative is just the
            // complement, the ladder below handles the function directly.
            if !c.ops.is_empty() && c.representative != f && c.representative != !f {
                let rep_frag = self.synth_inner(c.representative);
                let frag = rep_frag.undo_affine_ops(&c.ops);
                debug_assert_eq!(frag.eval_tt(), f);
                return frag;
            }
        }
        // Degree d needs at least ⌈log₂ d⌉ AND gates; MC = 2 is only
        // possible for degree ≤ 4.
        if degree <= 4
            && f.vars() <= self.config.exact_search_max_vars
            && f.support_size() <= self.config.exact_search_max_vars
        {
            if let Some(frag) = exact::search_mc2(f) {
                return frag;
            }
        }
        davio::synthesize(self, f)
    }
}

/// Builds the (AND-free) fragment of an affine function.
fn affine_fragment(f: Tt) -> XagFragment {
    let (mask, constant) = f
        .affine_decomposition()
        .expect("affine_fragment requires an affine function");
    let mut frag = XagFragment::new(f.vars());
    let refs: Vec<_> = (0..f.vars())
        .filter(|i| (mask >> i) & 1 == 1)
        .map(XagFragment::input)
        .collect();
    let out = frag.xor_many(&refs);
    frag.set_output(out.complement_if(constant));
    frag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_functions_need_no_ands() {
        let mut s = Synthesizer::new();
        for n in 1..=6usize {
            let parity = Tt::from_fn(n, |m| m.count_ones() % 2 == 1);
            let frag = s.synthesize(parity);
            assert_eq!(frag.num_ands(), 0, "n={n}");
            assert_eq!(frag.eval_tt(), parity);
            let frag_inv = s.synthesize(!parity);
            assert_eq!(frag_inv.num_ands(), 0);
            assert_eq!(frag_inv.eval_tt(), !parity);
        }
    }

    #[test]
    fn majority_and_mux_take_one_and() {
        let mut s = Synthesizer::new();
        let maj = Tt::from_bits(0xe8, 3);
        assert_eq!(s.mc_upper_bound(maj), 1);
        let mux = Tt::from_bits(0xd8, 3); // s ? a : b
        assert_eq!(s.mc_upper_bound(mux), 1);
    }

    #[test]
    fn and_chains() {
        let mut s = Synthesizer::new();
        for n in 2..=6usize {
            let and_n = Tt::from_fn(n, |m| m == (1 << n) - 1);
            let frag = s.synthesize(and_n);
            assert_eq!(frag.eval_tt(), and_n);
            assert_eq!(frag.num_ands(), n - 1, "AND{n} needs n-1 ANDs");
        }
    }

    #[test]
    fn known_small_mcs() {
        let mut s = Synthesizer::new();
        // All 3-variable functions have MC ≤ 2 (the degree-3 class needs 2).
        for bits in 0..256u64 {
            let f = Tt::from_bits(bits, 3);
            let frag = s.synthesize(f);
            assert_eq!(frag.eval_tt(), f, "function {bits:#x}");
            assert!(frag.num_ands() <= 2, "{bits:#x} used {}", frag.num_ands());
        }
    }

    #[test]
    fn four_var_functions_stay_reasonable() {
        // The true bound is 3; our ladder guarantees ≤ 3 via exact search
        // for degree ≤ 4 (always true at n=4) plus quadratic/davio.
        let mut s = Synthesizer::new();
        let mut worst = 0;
        for bits in (0..65_536u64).step_by(97) {
            let f = Tt::from_bits(bits, 4);
            let frag = s.synthesize(f);
            assert_eq!(frag.eval_tt(), f);
            worst = worst.max(frag.num_ands());
        }
        assert!(worst <= 4, "worst 4-var MC estimate was {worst}");
    }

    #[test]
    fn support_reduction_lifts_correctly() {
        let mut s = Synthesizer::new();
        // f depends only on x1, x4 out of 6 vars.
        let f = Tt::projection(1, 6) & Tt::projection(4, 6);
        let frag = s.synthesize(f);
        assert_eq!(frag.num_inputs(), 6);
        assert_eq!(frag.num_ands(), 1);
        assert_eq!(frag.eval_tt(), f);
    }

    #[test]
    fn cache_is_effective() {
        let mut s = Synthesizer::new();
        let f = Tt::from_bits(0x9e37_79b9_7f4a_7c15, 6);
        let a = s.synthesize(f);
        let b = s.synthesize(f);
        assert_eq!(a, b);
    }
}
