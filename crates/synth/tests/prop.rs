//! Randomized property tests for MC-oriented synthesis, driven by a
//! fixed-seed deterministic generator.

use mc_rng::Rng;
use xag_synth::{quadratic_rank, SynthConfig, Synthesizer};
use xag_tt::Tt;

fn arb_tt(rng: &mut Rng) -> Tt {
    let vars = rng.gen_range(1..7);
    Tt::from_bits(rng.next_u64(), vars)
}

/// Random quadratic function: XOR of random products of linear forms plus a
/// random affine part.
fn arb_quadratic(rng: &mut Rng) -> Tt {
    let n = rng.gen_range(2..7);
    let mask = (1u64 << n) - 1;
    let linf = |m: u64| Tt::from_fn(n, move |x| ((x & m & mask).count_ones() % 2) == 1);
    let mut f = linf(rng.next_u64());
    if rng.gen() {
        f = !f;
    }
    for _ in 0..rng.gen_range(0..4) {
        f = f ^ (linf(rng.next_u64()) & linf(rng.next_u64()));
    }
    f
}

#[test]
fn synthesis_is_functionally_correct() {
    let mut rng = Rng::seed_from_u64(0x5101);
    let mut s = Synthesizer::new();
    for _ in 0..96 {
        let f = arb_tt(&mut rng);
        let frag = s.synthesize(f);
        assert_eq!(frag.eval_tt(), f, "{f:?}");
    }
}

#[test]
fn quadratics_hit_the_symplectic_optimum() {
    let mut rng = Rng::seed_from_u64(0x5102);
    let mut s = Synthesizer::new();
    let mut hits = 0;
    for _ in 0..96 {
        let f = arb_quadratic(&mut rng);
        if f.degree() != 2 {
            continue;
        }
        hits += 1;
        let frag = s.synthesize(f);
        assert_eq!(frag.eval_tt(), f, "{f:?}");
        assert_eq!(frag.num_ands(), quadratic_rank(f) / 2, "{f:?}");
    }
    assert!(hits > 48, "only {hits}/96 samples were quadratic");
}

#[test]
fn complement_costs_the_same() {
    let mut rng = Rng::seed_from_u64(0x5103);
    let mut s = Synthesizer::new();
    for _ in 0..96 {
        let f = arb_tt(&mut rng);
        let a = s.synthesize(f).num_ands();
        let b = s.synthesize(!f).num_ands();
        assert_eq!(a, b, "{f:?}");
    }
}

#[test]
fn disabling_exact_search_only_raises_counts() {
    let mut rng = Rng::seed_from_u64(0x5104);
    let mut fast = Synthesizer::with_config(SynthConfig {
        exact_search_max_vars: 0,
    });
    let mut full = Synthesizer::new();
    for _ in 0..96 {
        let f = arb_tt(&mut rng);
        let without = fast.synthesize(f);
        let with = full.synthesize(f);
        assert_eq!(without.eval_tt(), f, "{f:?}");
        assert!(with.num_ands() <= without.num_ands(), "{f:?}");
    }
}

#[test]
fn degree_lower_bound_is_respected() {
    // A circuit with k ANDs computes degree ≤ 2^k, so k ≥ ⌈log₂ degree⌉.
    let mut rng = Rng::seed_from_u64(0x5105);
    let mut s = Synthesizer::new();
    for _ in 0..96 {
        let f = arb_tt(&mut rng);
        let frag = s.synthesize(f);
        let deg = f.degree();
        if deg >= 1 {
            let lower = (32 - (deg - 1).leading_zeros()) as usize;
            assert!(
                frag.num_ands() >= lower,
                "{f:?}: {} ANDs for degree {deg}",
                frag.num_ands()
            );
        } else {
            assert_eq!(frag.num_ands(), 0, "{f:?}");
        }
    }
}
