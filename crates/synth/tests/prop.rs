//! Property-based tests for MC-oriented synthesis.

use proptest::prelude::*;
use xag_synth::{quadratic_rank, SynthConfig, Synthesizer};
use xag_tt::Tt;

fn arb_tt() -> impl Strategy<Value = Tt> {
    (any::<u64>(), 1usize..=6).prop_map(|(bits, vars)| Tt::from_bits(bits, vars))
}

/// Random quadratic function: XOR of random products of linear forms plus a
/// random affine part.
fn arb_quadratic() -> impl Strategy<Value = Tt> {
    (
        2usize..=6,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(n, prods, lin, c)| {
            let mask = (1u64 << n) - 1;
            let linf = |m: u64| Tt::from_fn(n, move |x| ((x & m & mask).count_ones() % 2) == 1);
            let mut f = linf(lin);
            if c {
                f = !f;
            }
            for (a, b) in prods {
                f = f ^ (linf(a) & linf(b));
            }
            f
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn synthesis_is_functionally_correct(f in arb_tt()) {
        let mut s = Synthesizer::new();
        let frag = s.synthesize(f);
        prop_assert_eq!(frag.eval_tt(), f);
    }

    #[test]
    fn quadratics_hit_the_symplectic_optimum(f in arb_quadratic()) {
        prop_assume!(f.degree() == 2);
        let mut s = Synthesizer::new();
        let frag = s.synthesize(f);
        prop_assert_eq!(frag.eval_tt(), f);
        prop_assert_eq!(frag.num_ands(), quadratic_rank(f) / 2);
    }

    #[test]
    fn complement_costs_the_same(f in arb_tt()) {
        let mut s = Synthesizer::new();
        let a = s.synthesize(f).num_ands();
        let b = s.synthesize(!f).num_ands();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn disabling_exact_search_only_raises_counts(f in arb_tt()) {
        let mut fast = Synthesizer::with_config(SynthConfig {
            exact_search_max_vars: 0,
        });
        let mut full = Synthesizer::new();
        let without = fast.synthesize(f);
        let with = full.synthesize(f);
        prop_assert_eq!(without.eval_tt(), f);
        prop_assert!(with.num_ands() <= without.num_ands());
    }

    #[test]
    fn degree_lower_bound_is_respected(f in arb_tt()) {
        // A circuit with k ANDs computes degree ≤ 2^k, so k ≥ ⌈log₂ degree⌉.
        let mut s = Synthesizer::new();
        let frag = s.synthesize(f);
        let deg = f.degree();
        if deg >= 1 {
            let lower = (32 - (deg - 1).leading_zeros()) as usize;
            prop_assert!(frag.num_ands() >= lower, "{} ANDs for degree {deg}", frag.num_ands());
        } else {
            prop_assert_eq!(frag.num_ands(), 0);
        }
    }
}
