//! # mc-repro — reducing multiplicative complexity in logic networks
//!
//! A from-scratch Rust reproduction of *"Reducing the Multiplicative
//! Complexity in Logic Networks for Cryptography and Security
//! Applications"* (Testa, Soeken, Amarù, De Micheli — DAC 2019): cut
//! rewriting over XOR-AND graphs that minimizes the number of AND gates,
//! the cost that dominates MPC, FHE and zero-knowledge protocols.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`tt`] — truth tables, ANF, Walsh spectra, affine operations;
//! * [`network`] — the XAG data structure (strashing, substitution,
//!   simulation, Bristol-fashion I/O);
//! * [`affine`] — affine-equivalence classification;
//! * [`synth`] — MC-oriented synthesis (the on-demand database);
//! * [`cuts`] — k-feasible cut enumeration;
//! * [`mc`] — the cut-rewriting optimizer (the paper's Algorithm 1) as a
//!   pass-based pipeline: [`mc::Pass`] implementations
//!   ([`mc::McRewrite`], [`mc::SizeRewrite`], [`mc::XorReduce`],
//!   [`mc::Cleanup`]) composed by [`mc::Pipeline`] over a shared
//!   [`mc::OptContext`], with [`mc::McOptimizer`] as the one-call facade
//!   and [`mc::FlowSpec`] as the serializable flow-description language
//!   the service tiers speak (`mc(cut=6);xor;cleanup*`-style specs,
//!   DESIGN.md §8);
//! * [`circuits`] — EPFL-style and MPC/FHE benchmark generators.
//!
//! # Quickstart
//!
//! ```
//! use mc_repro::mc::McOptimizer;
//! use mc_repro::network::Xag;
//!
//! // A textbook full adder: 3 AND gates.
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//!
//! // One optimizer call later: multiplicative complexity 1.
//! McOptimizer::new().run_to_convergence(&mut xag);
//! assert_eq!(xag.num_ands(), 1);
//! ```

pub use xag_affine as affine;
pub use xag_circuits as circuits;
pub use xag_cuts as cuts;
pub use xag_mc as mc;
pub use xag_network as network;
pub use xag_synth as synth;
pub use xag_tt as tt;
