//! Cross-crate integration: generators → cut-rewriting pipeline →
//! verification → Bristol export, over a sample of both benchmark suites.
//! One [`OptContext`] is shared across every network, exercising database
//! amortization the way the table binaries use it.

use mc_repro::circuits::epfl::{epfl_suite, Scale};
use mc_repro::circuits::mpc::mpc_suite;
use mc_repro::mc::{McRewrite, OptContext, Pass, Pipeline};
use mc_repro::network::{equiv, read_bristol, write_bristol};

#[test]
fn reduced_epfl_rows_optimize_and_stay_equivalent() {
    let interesting = ["adder", "bar", "int2float", "dec", "priority"];
    let mut ctx = OptContext::new();
    let flow = Pipeline::paper_flow();
    for bench in epfl_suite(Scale::Reduced) {
        if !interesting.contains(&bench.name) {
            continue;
        }
        let mut xag = bench.xag.cleanup();
        let before = xag.num_ands();
        flow.run(&mut xag, &mut ctx);
        assert!(xag.num_ands() <= before, "{} regressed", bench.name);
        assert!(
            equiv(&bench.xag, &xag.cleanup(), 42, 64),
            "{} changed function",
            bench.name
        );
    }
}

#[test]
fn comparators_improve_and_roundtrip_through_bristol() {
    let mut ctx = OptContext::new();
    let flow = Pipeline::paper_flow();
    for bench in mpc_suite(false) {
        if !bench.name.starts_with("Comp.") {
            continue;
        }
        let mut xag = bench.xag.cleanup();
        let before = xag.num_ands();
        flow.run(&mut xag, &mut ctx);
        // The paper reports 24–28% improvements on the comparators.
        assert!(
            xag.num_ands() < before,
            "{}: no improvement found",
            bench.name
        );
        let xag = xag.cleanup();
        let mut buf = Vec::new();
        write_bristol(&xag, &mut buf).expect("export");
        let back = read_bristol(buf.as_slice()).expect("import");
        assert!(equiv(&xag, &back, 1, 32), "{} roundtrip", bench.name);
    }
}

#[test]
fn one_round_is_cheaper_than_convergence_but_helps() {
    let suite = epfl_suite(Scale::Reduced);
    let bar = suite.iter().find(|b| b.name == "bar").expect("barrel");
    let mut ctx = OptContext::new();
    let mut one = bar.xag.cleanup();
    let round = McRewrite::new().run(&mut one, &mut ctx);
    assert!(round.ands_after < round.ands_before, "one round helps");

    let mut conv = bar.xag.cleanup();
    Pipeline::paper_flow().run(&mut conv, &mut ctx);
    assert!(conv.num_ands() <= one.num_ands(), "convergence ≥ one round");
    // Barrel shifter: textbook muxes (3 ANDs) must collapse toward 1 AND
    // per mux, i.e. at least a 50% cut.
    assert!(
        (conv.num_ands() as f64) < 0.5 * (bar.xag.num_ands() as f64),
        "barrel shifter should improve by ≥ 50% ({} → {})",
        bar.xag.num_ands(),
        conv.num_ands()
    );
}
