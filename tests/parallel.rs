//! Determinism of the parallel sharded rewriting engine: the optimized
//! network must be bit-identical for every thread count — same AND count,
//! same XOR count, same output truth tables, and byte-identical exported
//! netlists. This is the contract that makes `--threads N` safe to use in
//! production: thread count may only change wall-clock, never results.

use mc_repro::circuits::arith::{add_ripple, input_word, output_word};
use mc_repro::circuits::keccak::keccak_f;
use mc_repro::mc::{McOptimizer, OptContext, ParRewrite, Pass, Pipeline, RewriteParams};
use mc_repro::network::fuzz::{random_xag, FuzzConfig};
use mc_repro::network::{equiv_exhaustive, write_verilog, Signal, Xag};

/// Serializes the cleaned network; byte equality means structural
/// bit-identity (same gates, same wiring, same polarity, same order).
fn netlist(xag: &Xag) -> String {
    let mut buf = Vec::new();
    write_verilog(&xag.cleanup(), "m", &mut buf).expect("write");
    String::from_utf8(buf).expect("utf8")
}

/// Full output truth tables of a ≤6-input network: one 64-bit word per
/// output, bit `m` = output value on minterm `m`.
fn truth_tables(xag: &Xag) -> Vec<u64> {
    assert!(xag.num_inputs() <= 6);
    let words: Vec<u64> = (0..xag.num_inputs())
        .map(|i| {
            [
                0xaaaa_aaaa_aaaa_aaaa,
                0xcccc_cccc_cccc_cccc,
                0xf0f0_f0f0_f0f0_f0f0,
                0xff00_ff00_ff00_ff00,
                0xffff_0000_ffff_0000,
                0xffff_ffff_0000_0000,
            ][i]
        })
        .collect();
    xag.simulate(&words)
}

#[test]
fn fuzz_networks_are_bit_identical_across_thread_counts() {
    for seed in 0..10u64 {
        let cfg = match seed % 3 {
            0 => FuzzConfig::default(),
            1 => FuzzConfig::xor_heavy(),
            _ => FuzzConfig::and_heavy(),
        };
        let base = random_xag(&cfg, seed);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut xag = base.cleanup();
            let mut ctx = OptContext::new();
            Pipeline::paper_flow().run_parallel(&mut xag, &mut ctx, threads);
            runs.push((
                threads,
                xag.num_ands(),
                xag.num_xors(),
                truth_tables(&xag),
                netlist(&xag),
            ));
        }
        let (_, ands, xors, tts, text) = &runs[0];
        for (threads, a, x, t, s) in &runs[1..] {
            assert_eq!(
                a, ands,
                "seed {seed}: AND count differs at {threads} threads"
            );
            assert_eq!(
                x, xors,
                "seed {seed}: XOR count differs at {threads} threads"
            );
            assert_eq!(
                t, tts,
                "seed {seed}: truth tables differ at {threads} threads"
            );
            assert_eq!(s, text, "seed {seed}: netlist differs at {threads} threads");
        }
        assert_eq!(tts, &truth_tables(&base), "seed {seed}: function changed");
    }
}

#[test]
fn adder_optimum_is_reached_identically_at_every_thread_count() {
    let build = || {
        let mut x = Xag::new();
        let a = input_word(&mut x, 8);
        let b = input_word(&mut x, 8);
        let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
        output_word(&mut x, &s);
        x.output(c);
        x
    };
    let mut results = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut xag = build();
        let mut opt = McOptimizer::with_params(RewriteParams {
            threads,
            ..RewriteParams::default()
        });
        opt.run_to_convergence(&mut xag);
        results.push((xag.num_ands(), netlist(&xag)));
        assert!(equiv_exhaustive(&build(), &xag.cleanup()));
    }
    // threads == 1 takes the sequential path, > 1 the sharded engine; the
    // parallel results must agree with each other bit for bit, and both
    // paths must reach the known optimum.
    assert_eq!(results[1], results[2], "2 vs 4 threads");
    assert_eq!(results[0].0, 8, "sequential: n-bit adder has MC n");
    assert_eq!(results[1].0, 8, "parallel: n-bit adder has MC n");
}

#[test]
fn keccak_round_function_rewrites_identically_across_thread_counts() {
    // One parallel MC round over Keccak-f[25] (the χ layer is the AND
    // bottleneck the paper targets). A single round keeps the test fast
    // while still covering a real crypto kernel with shared fanout.
    let base = keccak_f(1);
    let mut texts = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut xag = base.cleanup();
        let mut ctx = OptContext::new();
        let stats = ParRewrite::new(threads).run(&mut xag, &mut ctx);
        assert_eq!(stats.ands_after, xag.num_ands());
        texts.push(netlist(&xag));
    }
    assert_eq!(texts[0], texts[1], "1 vs 2 threads");
    assert_eq!(texts[0], texts[2], "1 vs 4 threads");
}
