//! End-to-end tests of the `mc-serve` daemon: boot on an ephemeral port,
//! drive it with concurrent clients over real TCP, equivalence-check
//! every returned netlist, and verify the semantic cache through the
//! `stats` endpoint.

use std::time::Instant;

use mc_serve::{Client, OptimizeRequest, ServeConfig, Server};
use xag_mc::{FlowKind, FlowSpec};
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::{equiv_exhaustive, read_bristol, write_bristol, Xag};

fn bristol_text(xag: &Xag) -> String {
    let mut buf = Vec::new();
    write_bristol(xag, &mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("bristol is ASCII")
}

fn boot(workers: usize) -> mc_serve::ServerHandle {
    Server::bind(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("bind on an ephemeral port")
}

/// The acceptance scenario: two concurrent clients submit fuzz networks,
/// every response is equivalence-checked against its input, a
/// resubmission is a cache hit (verified via `stats`), and the sustained
/// throughput clears 1 job/s.
#[test]
fn two_clients_get_equivalent_results_and_cache_hits() {
    let handle = boot(2);
    let addr = handle.local_addr();
    const JOBS_PER_CLIENT: u64 = 6;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..2u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let cfg = FuzzConfig::default();
                for j in 0..JOBS_PER_CLIENT {
                    let seed = 1000 * c + j; // client-disjoint seeds
                    let input = random_xag(&cfg, seed);
                    let result = client
                        .optimize(OptimizeRequest {
                            circuit: bristol_text(&input),
                            ..OptimizeRequest::default()
                        })
                        .expect("optimize");
                    assert!(!result.cached, "seed {seed} was never submitted before");
                    assert!(
                        result.ands_after <= result.ands_before,
                        "optimization must not add ANDs"
                    );
                    // Equivalence-check every returned netlist.
                    let back = read_bristol(result.netlist.as_bytes()).expect("parse response");
                    assert!(
                        equiv_exhaustive(&input, &back),
                        "returned netlist differs from input (seed {seed})"
                    );
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let rate = (2 * JOBS_PER_CLIENT) as f64 / elapsed;
    assert!(
        rate > 1.0,
        "sustained throughput {rate:.2} jobs/s is below 1 job/s"
    );

    // A structurally identical resubmission (fresh build from the same
    // seed, over a fresh connection) must be a cache hit.
    let mut client = Client::connect(addr).expect("connect");
    let before = client.stats().expect("stats");
    assert_eq!(before.cache_hits, 0);
    assert_eq!(before.cache_misses, 2 * JOBS_PER_CLIENT);
    assert_eq!(before.jobs_served, 2 * JOBS_PER_CLIENT);

    let resubmitted = random_xag(&FuzzConfig::default(), 1003);
    let hit = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&resubmitted),
            ..OptimizeRequest::default()
        })
        .expect("optimize resubmission");
    assert!(hit.cached, "identical resubmission must hit the cache");
    let back = read_bristol(hit.netlist.as_bytes()).expect("parse cached response");
    assert!(equiv_exhaustive(&resubmitted, &back));

    let after = client.stats().expect("stats");
    assert_eq!(after.cache_hits, 1, "stats endpoint must count the hit");
    assert_eq!(after.cache_misses, before.cache_misses);
    assert_eq!(after.jobs_served, before.jobs_served + 1);
    assert!(after.hit_rate() > 0.0);
    // Per-flow rows are keyed by normalized spec; the default flow is
    // the `paper` alias.
    let paper = FlowSpec::default().normalized();
    assert!(after
        .flows
        .iter()
        .any(|t| t.flow == paper && t.jobs == 2 * JOBS_PER_CLIENT));

    client.shutdown().expect("shutdown");
    handle.join();
}

/// A permuted-but-isomorphic circuit — same graph, different gate order
/// and operand order in the file — must hit the semantic cache.
#[test]
fn isomorphic_submission_is_a_cache_hit() {
    let handle = boot(1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let mut p = Xag::new();
    let (a, b, c) = (p.input(), p.input(), p.input());
    let ab = p.and(a, b);
    let ca = p.and(c, !a);
    let x = p.xor(ab, ca);
    let m = p.maj(a, b, c);
    p.output(x);
    p.output(m);

    // Same graph, different construction order, swapped operands.
    let mut q = Xag::new();
    let (a, b, c) = (q.input(), q.input(), q.input());
    let ca = q.and(!a, c);
    let m = q.maj(a, b, c);
    let ab = q.and(b, a);
    let x = q.xor(ca, ab);
    q.output(x);
    q.output(m);

    let first = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&p),
            ..OptimizeRequest::default()
        })
        .expect("first");
    assert!(!first.cached);
    let second = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&q),
            ..OptimizeRequest::default()
        })
        .expect("second");
    assert!(second.cached, "isomorphic network must hit");
    assert_eq!(second.job_id, first.job_id);
    assert_eq!(second.netlist, first.netlist);

    // A different flow is a different job, not a hit (via the deprecated
    // FlowKind shim, which must keep compiling and keep its wire name).
    let compress = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&p),
            flow: FlowKind::Compress.into(),
            ..OptimizeRequest::default()
        })
        .expect("compress");
    assert!(!compress.cached);

    client.shutdown().expect("shutdown");
    handle.join();
}

/// The FlowSpec cache-key contract over the wire: the `paper` alias and
/// its written-out expansion (plus whitespace and `par{}` variants) are
/// one job — one miss, then hits — while `mc(cut=4)` and `mc(cut=6)`
/// provably miss each other.
#[test]
fn alias_and_expanded_spec_share_one_cache_entry() {
    let handle = boot(1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let circuit = bristol_text(&random_xag(&FuzzConfig::default(), 21));
    let submit = |client: &mut Client, flow: &str| {
        client
            .optimize(OptimizeRequest {
                circuit: circuit.clone(),
                flow: flow.parse().expect("valid spec"),
                ..OptimizeRequest::default()
            })
            .expect("optimize")
    };

    let first = submit(&mut client, "paper");
    assert!(!first.cached, "cold alias submission computes");
    for variant in [
        "{mc(cut=4);mc(cut=6)}*",
        " { mc( cut = 4 ) ; mc( cut = 6 ) } * ",
        "par(threads=2){mc(cut=4);mc(cut=6)}*",
        "paper_flow",
    ] {
        let hit = submit(&mut client, variant);
        assert!(hit.cached, "{variant} must hit the alias's entry");
        assert_eq!(hit.job_id, first.job_id, "{variant}");
        assert_eq!(hit.netlist, first.netlist, "{variant}");
    }

    let four = submit(&mut client, "mc(cut=4)");
    assert!(!four.cached, "mc(cut=4) is its own job");
    let six = submit(&mut client, "mc(cut=6)");
    assert!(!six.cached, "mc(cut=6) must miss mc(cut=4)'s entry");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_misses, 3, "paper, mc(cut=4), mc(cut=6)");
    assert_eq!(stats.cache_hits, 4, "every paper variant hit");
    // The alias variants aggregate into one per-flow row.
    let paper_row = stats
        .flows
        .iter()
        .find(|t| t.flow == FlowSpec::default().normalized())
        .expect("paper row");
    assert_eq!(paper_row.jobs, 1, "one computation across all variants");

    client.shutdown().expect("shutdown");
    handle.join();
}

/// The per-flow statistics map is bounded: a client cycling through
/// distinct specs cannot grow server memory (or the stats frame the
/// router polls) without limit — past the row bound, new flows aggregate
/// into the `(other)` catch-all row.
#[test]
fn per_flow_stats_rows_are_bounded() {
    const DISTINCT_SPECS: u64 = 70; // > the server's 64-row bound
    let handle = boot(2);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // A tiny circuit and trivial cleanup-only flows keep each job cheap.
    let mut x = Xag::new();
    let (a, b) = (x.input(), x.input());
    let g = x.and(a, b);
    x.output(g);
    let circuit = bristol_text(&x);
    for k in 0..DISTINCT_SPECS {
        client
            .optimize(OptimizeRequest {
                circuit: circuit.clone(),
                flow: format!("cleanup*{}", k + 2).parse().expect("valid spec"),
                ..OptimizeRequest::default()
            })
            .expect("optimize");
    }

    let stats = client.stats().expect("stats");
    // The 64-row bound (3 slots pre-seeded for the canonical flows)
    // plus the catch-all.
    assert!(
        stats.flows.len() <= 64 + 1,
        "flow rows must stay bounded, got {}",
        stats.flows.len()
    );
    let other = stats
        .flows
        .iter()
        .find(|t| t.flow == "(other)")
        .expect("overflow flows aggregate into the catch-all row");
    assert_eq!(
        other.jobs,
        DISTINCT_SPECS - (64 - 3),
        "jobs past the bound land in the catch-all"
    );
    // The pre-seeded canonical rows survive the churn un-displaced.
    let paper = FlowSpec::default().normalized();
    assert!(stats.flows.iter().any(|t| t.flow == paper));

    client.shutdown().expect("shutdown");
    handle.join();
}

/// The resource guard at the service edge: a hostile spec in a raw frame
/// is answered with a structured protocol error naming the limit, the
/// connection survives, and no worker ever sees the job.
#[test]
fn hostile_flow_spec_is_rejected_at_the_edge() {
    use mc_serve::protocol::{read_frame, write_frame, Response};

    let handle = boot(1);
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");

    let mut reject = |flow: &str, needle: &str| {
        let payload = format!(
            r#"{{"type":"optimize","circuit":"1 3\n1 2\n1 1\n\n2 1 0 1 2 AND\n","flow":"{flow}"}}"#
        );
        write_frame(&mut stream, payload.as_bytes()).expect("write frame");
        let reply = read_frame(&mut stream).expect("read frame").expect("reply");
        match Response::from_payload(&reply).expect("parse response") {
            Response::Error { message } => {
                assert!(message.contains(needle), "{flow}: {message}")
            }
            other => panic!("{flow}: expected an error, got {other:?}"),
        }
    };
    reject("cleanup*9999999", "limit");
    reject("{cleanup*1000}*1000", "budget");
    reject("mc(cut=7)", "cut size");

    // The daemon is still healthy on a typed connection.
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let input = random_xag(&FuzzConfig::default(), 3);
    let result = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&input),
            ..OptimizeRequest::default()
        })
        .expect("daemon still healthy");
    let back = read_bristol(result.netlist.as_bytes()).expect("parse");
    assert!(equiv_exhaustive(&input, &back));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_served, 1, "rejected specs never became jobs");

    client.shutdown().expect("shutdown");
    handle.join();
}

/// A malformed upload is a protocol error; the connection and the daemon
/// keep working afterwards.
#[test]
fn malformed_circuit_is_an_error_not_a_crash() {
    let handle = boot(1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let err = client
        .optimize(OptimizeRequest {
            circuit: "this is not a circuit".to_string(),
            ..OptimizeRequest::default()
        })
        .expect_err("garbage must be rejected");
    assert!(matches!(err, mc_serve::ClientError::Server(_)), "{err}");

    // Bristol that sniffs fine but is structurally broken.
    let err = client
        .optimize(OptimizeRequest {
            circuit: "3 4\n1 2\n1 1\n\n2 1 0 1 99 AND\n".to_string(),
            ..OptimizeRequest::default()
        })
        .expect_err("broken bristol must be rejected");
    assert!(matches!(err, mc_serve::ClientError::Server(_)), "{err}");

    // The same connection still serves good requests — no worker died.
    let input = random_xag(&FuzzConfig::default(), 7);
    let result = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&input),
            ..OptimizeRequest::default()
        })
        .expect("daemon still healthy");
    let back = read_bristol(result.netlist.as_bytes()).expect("parse");
    assert!(equiv_exhaustive(&input, &back));

    let status = client.status().expect("status");
    assert_eq!(status.workers, 1);

    client.shutdown().expect("shutdown");
    handle.join();
}

/// Concurrent isomorphic submissions racing a cold cache must coalesce:
/// exactly one computation (one miss), everyone else served from the
/// commit as a hit — never N redundant computations of the same key.
#[test]
fn racing_isomorphic_submissions_coalesce_to_one_miss() {
    const RACERS: u64 = 6;
    let handle = boot(4);
    let addr = handle.local_addr();

    // One nontrivial circuit, same seed for every racer.
    let circuit = bristol_text(&random_xag(&FuzzConfig::default(), 77));
    let cached_flags: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..RACERS)
            .map(|_| {
                let circuit = circuit.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .optimize(OptimizeRequest {
                            circuit,
                            ..OptimizeRequest::default()
                        })
                        .expect("optimize")
                        .cached
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let computed = cached_flags.iter().filter(|&&cached| !cached).count();
    assert_eq!(
        computed, 1,
        "exactly one racer computes; got {cached_flags:?}"
    );

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_misses, 1, "one miss for the cold key");
    assert_eq!(
        stats.cache_hits,
        RACERS - 1,
        "the rest are (coalesced) hits"
    );
    assert_eq!(stats.jobs_served, RACERS);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// `ping` answers `pong` with a measurable round-trip time, and the
/// cluster-handshake frames are cleanly rejected by a plain backend.
#[test]
fn ping_round_trips_and_cluster_frames_are_rejected() {
    let handle = boot(1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    for _ in 0..3 {
        let rtt = client.ping().expect("ping");
        assert!(rtt.as_secs() < 5, "loopback rtt is sane");
    }

    let err = client
        .register("127.0.0.1:1", 1, 64)
        .expect_err("a backend is not a router");
    assert!(matches!(err, mc_serve::ClientError::Server(_)), "{err}");
    let err = client.cluster_stats().expect_err("no cluster stats here");
    assert!(matches!(err, mc_serve::ClientError::Server(_)), "{err}");

    // The connection survives the rejections.
    assert!(client.ping().is_ok());

    // Stats carry the uptime and the complete per-flow breakdown —
    // zero-filled rows keyed by the canonical flows' normalized specs.
    let stats = client.stats().expect("stats");
    let names: Vec<&str> = stats.flows.iter().map(|f| f.flow.as_str()).collect();
    for alias in ["paper", "compress", "from_params"] {
        let row = FlowSpec::named(alias)
            .expect("canonical alias")
            .normalized();
        assert!(
            names.contains(&row.as_str()),
            "missing flow row {row}: {names:?}"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

/// Verilog in, Verilog out: format handling end to end.
#[test]
fn verilog_round_trip_through_the_daemon() {
    use xag_circuits::CircuitFormat;
    use xag_network::{read_verilog, write_verilog};

    let handle = boot(1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let input = random_xag(&FuzzConfig::xor_heavy(), 11);
    let mut text = Vec::new();
    write_verilog(&input, "fuzz", &mut text).expect("write");
    let result = client
        .optimize(OptimizeRequest {
            circuit: String::from_utf8(text).expect("ascii"),
            output: CircuitFormat::Verilog,
            ..OptimizeRequest::default()
        })
        .expect("optimize verilog");
    assert_eq!(result.output, CircuitFormat::Verilog);
    let back = read_verilog(result.netlist.as_bytes()).expect("parse verilog response");
    assert!(equiv_exhaustive(&input, &back));

    client.shutdown().expect("shutdown");
    handle.join();
}
