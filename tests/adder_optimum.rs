//! Experiment E4 (paper §5.2): the optimizer drives ripple-carry adders to
//! the Boyar–Peralta optimum of exactly one AND gate per bit.

use mc_repro::circuits::arith::{add_ripple, input_word, output_word};
use mc_repro::mc::{McOptimizer, OptContext, Pipeline};
use mc_repro::network::{equiv_exhaustive, equiv_random, Signal, Xag};

fn adder(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &s);
    x.output(c);
    x
}

#[test]
fn eight_bit_adder_reaches_eight_ands() {
    let mut xag = adder(8);
    let reference = xag.cleanup();
    // Textbook: 3 ANDs per bit, minus 2 folded away at bit 0 (cin = 0).
    assert_eq!(xag.num_ands(), 22);
    let mut opt = McOptimizer::new();
    let stats = opt.run_to_convergence(&mut xag);
    assert!(stats.converged);
    assert_eq!(xag.num_ands(), 8, "known optimum is n ANDs");
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

#[test]
fn sixteen_bit_adder_reaches_sixteen_ands() {
    // Same experiment through the pipeline API: the explicit paper flow
    // must match what the facade does.
    let mut xag = adder(16);
    let reference = xag.cleanup();
    let mut ctx = OptContext::new();
    Pipeline::paper_flow().run(&mut xag, &mut ctx);
    assert_eq!(xag.num_ands(), 16);
    assert!(equiv_random(&reference, &xag.cleanup(), 0xADDE, 64));
}

#[test]
#[ignore = "release-mode scale check; run with --ignored --release"]
fn thirty_two_bit_adder_reaches_thirty_two_ands() {
    let mut xag = adder(32);
    let reference = xag.cleanup();
    let mut opt = McOptimizer::new();
    opt.run_to_convergence(&mut xag);
    assert_eq!(xag.num_ands(), 32, "paper: 32-bit adder optimized to 32");
    assert!(equiv_random(&reference, &xag.cleanup(), 0xADDE, 64));
}
