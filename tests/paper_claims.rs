//! Assertions pinning the paper's qualitative claims, beyond the table
//! reproductions (which live in the `table1`/`table2` binaries).

use mc_repro::affine::AffineClassifier;
use mc_repro::circuits::arith::{input_word, multiply_array, mux_textbook, output_word};
use mc_repro::mc::{reduce_xors, McOptimizer};
use mc_repro::network::{equiv_exhaustive, Xag};
use mc_repro::synth::Synthesizer;
use mc_repro::tt::Tt;

/// §1/§2: the full adder's multiplicative complexity is 1, found fully
/// automatically.
#[test]
fn full_adder_mc_is_one() {
    let mut xag = Xag::new();
    let (a, b, cin) = (xag.input(), xag.input(), xag.input());
    let ab = xag.and(a, b);
    let ac = xag.and(a, cin);
    let bc = xag.and(b, cin);
    let t = xag.xor(ab, ac);
    let cout = xag.xor(t, bc);
    let axb = xag.xor(a, b);
    let sum = xag.xor(axb, cin);
    xag.output(sum);
    xag.output(cout);
    let reference = xag.cleanup();
    McOptimizer::new().run_to_convergence(&mut xag);
    assert_eq!(xag.num_ands(), 1);
    assert_eq!(xag.and_depth(), 1);
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

/// §2.2: the five operations partition functions into 1, 2, 3, 8 classes
/// for 1–4 variables.
#[test]
fn class_counts_match_the_paper() {
    assert_eq!(AffineClassifier::count_classes(1), 1);
    assert_eq!(AffineClassifier::count_classes(2), 2);
    assert_eq!(AffineClassifier::count_classes(3), 3);
    assert_eq!(AffineClassifier::count_classes(4), 8);
}

/// §3: multiplicative complexity is invariant under the affine operations
/// — every member of the majority/AND class synthesizes with one AND gate.
#[test]
fn whole_class_shares_one_and() {
    let mut synth = Synthesizer::new();
    let maj = Tt::from_bits(0xe8, 3);
    for f in [
        maj,
        maj.flip_var(0),
        maj.translate(1, 2),
        !maj,
        maj.xor_input(2),
        maj.swap_vars(0, 2).translate(0, 1).flip_var(1),
    ] {
        let frag = synth.synthesize(f);
        assert_eq!(frag.num_ands(), 1, "{f:?}");
        assert_eq!(frag.eval_tt(), f);
    }
}

/// §5.1 (barrel shifter row): textbook multiplexers collapse from three
/// AND gates to one.
#[test]
fn mux_collapses_to_single_and() {
    let mut xag = Xag::new();
    let s = xag.input();
    let t = xag.input();
    let e = xag.input();
    let m = mux_textbook(&mut xag, s, t, e);
    xag.output(m);
    assert_eq!(xag.num_ands(), 3);
    let reference = xag.cleanup();
    McOptimizer::new().run_to_convergence(&mut xag);
    assert_eq!(xag.num_ands(), 1);
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

/// §5.2 (multiplier row): partial-product ANDs are irreducible, but the
/// adder tree shrinks — the multiplier improves without reaching the
/// n² floor.
#[test]
fn multiplier_improves_but_keeps_partial_products() {
    let mut xag = Xag::new();
    let a = input_word(&mut xag, 6);
    let b = input_word(&mut xag, 6);
    let p = multiply_array(&mut xag, &a, &b);
    output_word(&mut xag, &p);
    let initial = xag.num_ands();
    let reference = xag.cleanup();
    McOptimizer::new().run_to_convergence(&mut xag);
    assert!(xag.num_ands() < initial, "multiplier must improve");
    assert!(
        xag.num_ands() >= 36,
        "cannot beat the 36 partial products: {}",
        xag.num_ands()
    );
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

/// Extension: XOR reduction trims the rewriting overhead without touching
/// AND count or multiplicative depth.
#[test]
fn xor_reduction_after_rewriting() {
    let mut xag = Xag::new();
    let a = input_word(&mut xag, 10);
    let b = input_word(&mut xag, 10);
    let (s, c) =
        mc_repro::circuits::arith::add_ripple(&mut xag, &a, &b, mc_repro::network::Signal::CONST0);
    output_word(&mut xag, &s);
    xag.output(c);
    let reference = xag.cleanup();
    McOptimizer::new().run_to_convergence(&mut xag);
    let before = xag.cleanup();
    let reduced = reduce_xors(&before);
    assert!(reduced.num_xors() <= before.num_xors());
    assert_eq!(reduced.num_ands(), before.num_ands());
    assert!(reduced.and_depth() <= before.and_depth());
    assert!(equiv_exhaustive(&reference, &reduced));
}
