//! Concurrency-schedule fuzzing: the same workloads, replayed under
//! hundreds of seeded thread-interleaving perturbations.
//!
//! `mc_rng::sched` plants yield points inside the job queue, the
//! coalescing cache, and the sharded rewrite engine. Enabling the hook
//! with a seed makes each run take a *different* interleaving —
//! `yield_now` and microsecond sleeps at the contended spots — which
//! surfaces lost-wakeup, double-compute, and commit-order bugs that the
//! default scheduler almost never exhibits. The invariants:
//!
//! * **queue**: every pushed job is popped exactly once, under any
//!   schedule;
//! * **coalescing**: per key, exactly one thread computes; every other
//!   thread gets the identical entry (hit or coalesced wait);
//! * **propose/commit**: the parallel rewrite engine's result is
//!   byte-identical to the unperturbed baseline across 200 schedules.
//!
//! The hook is global process state, so every test serializes on one
//! mutex and disables the hook on exit (panic included) via a guard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;

use mc_repro::mc::{OptContext, Pipeline};
use mc_repro::network::fuzz::{random_xag, FuzzConfig};
use mc_repro::network::{write_verilog, Xag};
use mc_rng::sched;
use mc_serve::{CacheEntry, CoalescingCache, JobQueue, Plan};

/// Serializes the schedule-perturbation tests: the yield hook is global.
static SCHED_LOCK: Mutex<()> = Mutex::new(());

struct SchedSession<'a> {
    _held: MutexGuard<'a, ()>,
}

impl<'a> SchedSession<'a> {
    fn begin() -> Self {
        let held = SCHED_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        Self { _held: held }
    }
}

impl Drop for SchedSession<'_> {
    fn drop(&mut self) {
        sched::disable();
    }
}

// ---------------------------------------------------------------------
// Scenario 1: the job queue loses nothing.
// ---------------------------------------------------------------------

#[test]
fn queue_loses_no_jobs_under_perturbed_schedules() {
    let _session = SchedSession::begin();
    for seed in 0..40u64 {
        sched::enable(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let queue: Arc<JobQueue<usize>> = Arc::new(JobQueue::new(4));
        let producers = 4usize;
        let per_producer = 25usize;
        let consumers = 3usize;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&queue);
            handles.push(thread::spawn(move || {
                for j in 0..per_producer {
                    q.push(p * per_producer + j).expect("queue open");
                }
            }));
        }
        let popped: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let mut consumer_handles = Vec::new();
        for _ in 0..consumers {
            let q = Arc::clone(&queue);
            let sink = Arc::clone(&popped);
            consumer_handles.push(thread::spawn(move || {
                while let Some(job) = q.pop() {
                    sink.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(job);
                }
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        queue.close();
        for h in consumer_handles {
            h.join().expect("consumer");
        }

        let mut got = Arc::try_unwrap(popped)
            .expect("consumers done")
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        got.sort_unstable();
        let want: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(got, want, "seed {seed}: jobs lost or duplicated");
    }
}

// ---------------------------------------------------------------------
// Scenario 2: coalescing computes each key exactly once.
// ---------------------------------------------------------------------

fn entry_for(key_idx: usize) -> CacheEntry {
    CacheEntry {
        job_id: key_idx as u64,
        bristol: format!("bristol-{key_idx}"),
        verilog: format!("verilog-{key_idx}"),
        ..CacheEntry::default()
    }
}

#[test]
fn coalescing_computes_each_key_exactly_once() {
    let _session = SchedSession::begin();
    let keys = 8usize;
    let threads = 8usize;
    for seed in 0..40u64 {
        sched::enable(seed.wrapping_mul(0x517c_c1b7).wrapping_add(1));
        let cache = Arc::new(CoalescingCache::new(64));
        let computes: Arc<Vec<AtomicUsize>> =
            Arc::new((0..keys).map(|_| AtomicUsize::new(0)).collect());

        let mut handles = Vec::new();
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(thread::spawn(move || {
                // Each thread walks the keys from a different offset so
                // first-planner races differ per schedule.
                for step in 0..keys {
                    let k = (t + step) % keys;
                    let key = format!("key-{k}").into_bytes();
                    let got = match cache.plan(&key) {
                        Plan::Hit(entry) => entry,
                        Plan::Wait(rx) => rx.recv().expect("computing thread commits"),
                        Plan::Compute => {
                            computes[k].fetch_add(1, Ordering::SeqCst);
                            let entry = entry_for(k);
                            cache.commit(&key, &entry);
                            entry
                        }
                    };
                    assert_eq!(got, entry_for(k), "wrong entry for key {k}");
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        for (k, count) in computes.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "seed {seed}: key {k} computed {} times (want exactly 1)",
                count.load(Ordering::SeqCst)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 3: the parallel propose/commit round is schedule-invariant.
// ---------------------------------------------------------------------

fn netlist(xag: &Xag) -> Vec<u8> {
    let mut buf = Vec::new();
    write_verilog(&xag.cleanup(), "m", &mut buf).expect("in-memory write");
    buf
}

fn optimize(base: &Xag, threads: usize) -> Vec<u8> {
    let mut xag = base.cleanup();
    let mut ctx = OptContext::new();
    Pipeline::paper_flow().run_parallel(&mut xag, &mut ctx, threads);
    netlist(&xag)
}

#[test]
fn parallel_commits_are_byte_identical_across_200_schedules() {
    let _session = SchedSession::begin();
    // Three structurally different networks; the schedule seeds are
    // split across them so the suite still replays 200 interleavings.
    let configs = [
        FuzzConfig::default(),
        FuzzConfig::xor_heavy(),
        FuzzConfig::and_heavy(),
    ];
    let mut schedules_run = 0u32;
    let mut distinct: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    for (ci, cfg) in configs.iter().enumerate() {
        let base = random_xag(cfg, 0xda_c19 + ci as u64);
        sched::disable();
        let baseline = optimize(&base, 2);
        distinct.insert(ci, baseline.clone());
        let seeds = if ci == 0 { 68 } else { 66 };
        for seed in 0..seeds {
            sched::enable((seed as u64) << 8 | (ci as u64 + 1));
            let perturbed = optimize(&base, 2);
            assert_eq!(
                perturbed, baseline,
                "config {ci}, schedule seed {seed}: parallel rewrite diverged from baseline"
            );
            schedules_run += 1;
        }
    }
    assert_eq!(schedules_run, 200);
    assert!(distinct.len() == configs.len());
}
