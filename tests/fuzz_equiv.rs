//! Differential fuzzing of every optimization flow.
//!
//! In the spirit of sampler-testing oracles: instead of trusting the
//! rewriting engine because its unit tests pass, drive every `Pipeline`
//! flow — sequential and parallel — with a stream of seeded random
//! networks and check each result against the `equiv` oracle. All
//! networks stay within the exhaustive range of the oracle, so a pass
//! here is a proof of functional preservation for every generated case,
//! not a statistical argument.
//!
//! The seed is fixed (override with `MC_FUZZ_SEED=<n>` for exploration),
//! so a failure in CI replays locally from the log.

use mc_repro::mc::{Cleanup, McRewrite, OptContext, ParRewrite, Pipeline, XorReduce};
use mc_repro::network::fuzz::{random_xag, FuzzConfig};
use mc_repro::network::{equiv_exhaustive, Xag};

/// Default base seed of the differential suite.
const FUZZ_SEED: u64 = 0xDAC1_9F02;

/// Networks per flow; with four flows this exercises ~200 optimizations.
const NETWORKS_PER_FLOW: usize = 50;

fn base_seed() -> u64 {
    std::env::var("MC_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(FUZZ_SEED)
}

/// Cycles through the three generator shapes so every flow sees
/// XOR-heavy, AND-heavy, and mixed networks.
fn network(seed: u64) -> Xag {
    let cfg = match seed % 3 {
        0 => FuzzConfig::default(),
        1 => FuzzConfig::xor_heavy(),
        _ => FuzzConfig::and_heavy(),
    };
    random_xag(&cfg, seed)
}

fn check_flow(name: &str, make_flow: impl Fn() -> Pipeline, parallel_threads: Option<usize>) {
    let mut ctx = OptContext::new();
    let flow = make_flow();
    let base = base_seed();
    for i in 0..NETWORKS_PER_FLOW {
        let seed = base.wrapping_add(i as u64);
        let mut xag = network(seed);
        let reference = xag.cleanup();
        match parallel_threads {
            Some(t) => flow.run_parallel(&mut xag, &mut ctx, t),
            None => flow.run(&mut xag, &mut ctx),
        };
        assert!(
            equiv_exhaustive(&reference, &xag.cleanup()),
            "flow {name} broke equivalence on fuzz seed {seed}"
        );
    }
}

#[test]
fn paper_flow_preserves_function_on_random_networks() {
    check_flow("paper", Pipeline::paper_flow, None);
}

#[test]
fn compress_flow_preserves_function_on_random_networks() {
    check_flow("compress", Pipeline::compress, None);
}

#[test]
fn custom_flow_preserves_function_on_random_networks() {
    check_flow(
        "custom",
        || {
            Pipeline::new()
                .add(McRewrite::with_cut_size(4))
                .add(XorReduce::new())
                .add(Cleanup::new())
        },
        None,
    );
}

#[test]
fn parallel_paper_flow_preserves_function_on_random_networks() {
    check_flow("paper(3 threads)", Pipeline::paper_flow, Some(3));
}

#[test]
fn parallel_pass_flow_preserves_function_on_random_networks() {
    check_flow(
        "par-rewrite pass",
        || {
            Pipeline::new()
                .add(ParRewrite::new(2))
                .add(XorReduce::new())
                .add(Cleanup::new())
        },
        None,
    );
}
