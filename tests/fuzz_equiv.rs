//! Differential fuzzing of every optimization flow.
//!
//! In the spirit of sampler-testing oracles: instead of trusting the
//! rewriting engine because its unit tests pass, drive every `Pipeline`
//! flow — sequential and parallel — with a stream of seeded random
//! networks and check each result against the `equiv` oracle. All
//! networks stay within the exhaustive range of the oracle, so a pass
//! here is a proof of functional preservation for every generated case,
//! not a statistical argument.
//!
//! The seed is fixed (override with `MC_FUZZ_SEED=<n>` for exploration),
//! so a failure in CI replays locally from the log.

use mc_repro::mc::flow::sample_spec_text;
use mc_repro::mc::{Cleanup, FlowSpec, McRewrite, OptContext, ParRewrite, Pipeline, XorReduce};
use mc_repro::network::fuzz::{random_xag, FuzzConfig};
use mc_repro::network::{equiv_exhaustive, write_bristol, Xag};

/// Default base seed of the differential suite.
const FUZZ_SEED: u64 = 0xDAC1_9F02;

/// Networks per flow; with four flows this exercises ~200 optimizations.
const NETWORKS_PER_FLOW: usize = 50;

fn base_seed() -> u64 {
    std::env::var("MC_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(FUZZ_SEED)
}

/// Cycles through the three generator shapes so every flow sees
/// XOR-heavy, AND-heavy, and mixed networks.
fn network(seed: u64) -> Xag {
    let cfg = match seed % 3 {
        0 => FuzzConfig::default(),
        1 => FuzzConfig::xor_heavy(),
        _ => FuzzConfig::and_heavy(),
    };
    random_xag(&cfg, seed)
}

fn check_flow(name: &str, make_flow: impl Fn() -> Pipeline, parallel_threads: Option<usize>) {
    let mut ctx = OptContext::new();
    let flow = make_flow();
    let base = base_seed();
    for i in 0..NETWORKS_PER_FLOW {
        let seed = base.wrapping_add(i as u64);
        let mut xag = network(seed);
        let reference = xag.cleanup();
        match parallel_threads {
            Some(t) => flow.run_parallel(&mut xag, &mut ctx, t),
            None => flow.run(&mut xag, &mut ctx),
        };
        assert!(
            equiv_exhaustive(&reference, &xag.cleanup()),
            "flow {name} broke equivalence on fuzz seed {seed}"
        );
    }
}

#[test]
fn paper_flow_preserves_function_on_random_networks() {
    check_flow("paper", Pipeline::paper_flow, None);
}

#[test]
fn compress_flow_preserves_function_on_random_networks() {
    check_flow("compress", Pipeline::compress, None);
}

#[test]
fn custom_flow_preserves_function_on_random_networks() {
    check_flow(
        "custom",
        || {
            Pipeline::new()
                .add(McRewrite::with_cut_size(4))
                .add(XorReduce::new())
                .add(Cleanup::new())
        },
        None,
    );
}

#[test]
fn parallel_paper_flow_preserves_function_on_random_networks() {
    check_flow("paper(3 threads)", Pipeline::paper_flow, Some(3));
}

#[test]
fn parallel_pass_flow_preserves_function_on_random_networks() {
    check_flow(
        "par-rewrite pass",
        || {
            Pipeline::new()
                .add(ParRewrite::new(2))
                .add(XorReduce::new())
                .add(Cleanup::new())
        },
        None,
    );
}

// ---------------------------------------------------------------------
// FlowSpec sampling: instead of fuzzing only the four built-in flows,
// sample the *space of flows* itself — seeded random FlowSpecs (atoms,
// knobs, groups, `par{}` blocks, bounded and until-convergence
// repetition) — and run every sampled spec over fuzz networks against
// the exhaustive oracle.

/// Random FlowSpecs sampled per run.
const SPEC_SAMPLES: usize = 20;

/// Fuzz networks each sampled spec is checked on.
const NETWORKS_PER_SPEC: usize = 5;

#[test]
fn random_flow_specs_preserve_function_on_random_networks() {
    let base = base_seed();
    let mut rng = mc_rng::Rng::seed_from_u64(base ^ 0x51EC_F102);
    let mut ctx = OptContext::new();
    for s in 0..SPEC_SAMPLES {
        let text = sample_spec_text(&mut rng, true);
        let spec = FlowSpec::parse(&text)
            .unwrap_or_else(|e| panic!("sampled spec {text:?} failed to parse: {e}"));
        for i in 0..NETWORKS_PER_SPEC {
            let seed = base.wrapping_add((s * NETWORKS_PER_SPEC + i) as u64);
            let mut xag = network(seed);
            let reference = xag.cleanup();
            spec.run(&mut xag, &mut ctx, 1, 60);
            assert!(
                equiv_exhaustive(&reference, &xag.cleanup()),
                "sampled spec {text} broke equivalence on fuzz seed {seed}"
            );
        }
    }
}

/// Sampled specs wrapped in `par{}` blocks must be thread-count
/// invariant end to end: the same spec run with 1 and with 4 job threads
/// (and with the `par` wrapper erased) yields byte-identical netlists.
#[test]
fn par_block_specs_are_byte_identical_across_thread_counts() {
    let base = base_seed();
    let mut rng = mc_rng::Rng::seed_from_u64(base ^ 0x9A7B_0CC5);
    for s in 0..6 {
        let body = sample_spec_text(&mut rng, false);
        let wrapped = format!("par(threads={}){{{body}}};cleanup", 2 + s % 3);
        let plain = format!("{{{body}}};cleanup");
        let wrapped_spec = FlowSpec::parse(&wrapped)
            .unwrap_or_else(|e| panic!("sampled spec {wrapped:?} failed to parse: {e}"));
        let plain_spec = FlowSpec::parse(&plain).expect("plain variant parses");
        assert_eq!(
            wrapped_spec.normalized(),
            plain_spec.normalized(),
            "normalization must erase the par wrapper"
        );
        let net_seed = base.wrapping_add(7000 + s as u64);
        let netlist = |spec: &FlowSpec, threads: usize| {
            let mut xag = network(net_seed);
            let mut ctx = OptContext::new();
            spec.run(&mut xag, &mut ctx, threads, 60);
            let mut buf = Vec::new();
            write_bristol(&xag.cleanup(), &mut buf).expect("in-memory write");
            buf
        };
        let reference = netlist(&wrapped_spec, 1);
        assert_eq!(reference, netlist(&wrapped_spec, 4), "{wrapped}");
        assert_eq!(reference, netlist(&plain_spec, 1), "{wrapped} vs {plain}");
        assert_eq!(reference, netlist(&plain_spec, 4), "{plain}");
    }
}
