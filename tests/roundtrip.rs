//! Export → reimport → equivalence round-trips for both interchange
//! formats (Bristol fashion and structural Verilog), over the arithmetic
//! and crypto circuit generators. A round-trip failure means the writer
//! and reader disagree about the format — exactly the kind of silent
//! corruption a differential check catches and a golden-file test misses.

use mc_repro::circuits::aes::SboxBuilder;
use mc_repro::circuits::arith::{
    add_ripple, input_word, less_than_unsigned, multiply_array, output_word,
};
use mc_repro::circuits::keccak::keccak_f;
use mc_repro::network::{equiv, read_bristol, read_verilog, write_bristol, write_verilog, Xag};

fn via_bristol(x: &Xag) -> Xag {
    let mut buf = Vec::new();
    write_bristol(x, &mut buf).expect("bristol write");
    read_bristol(buf.as_slice()).expect("bristol read")
}

fn via_verilog(x: &Xag) -> Xag {
    let mut buf = Vec::new();
    write_verilog(x, "rt", &mut buf).expect("verilog write");
    read_verilog(buf.as_slice()).expect("verilog read")
}

/// Round-trips through both formats and checks I/O shape plus
/// equivalence (exhaustive up to 16 inputs, high-budget sampling beyond).
fn check_roundtrip(name: &str, x: &Xag) {
    for (format, back) in [("bristol", via_bristol(x)), ("verilog", via_verilog(x))] {
        assert_eq!(back.num_inputs(), x.num_inputs(), "{name}/{format} inputs");
        assert_eq!(
            back.num_outputs(),
            x.num_outputs(),
            "{name}/{format} outputs"
        );
        assert!(
            equiv(x, &back, 0xDAC19, 256),
            "{name}/{format} changed function"
        );
    }
}

#[test]
fn adder_roundtrips() {
    let mut x = Xag::new();
    let a = input_word(&mut x, 8);
    let b = input_word(&mut x, 8);
    let (s, c) = add_ripple(&mut x, &a, &b, mc_repro::network::Signal::CONST0);
    output_word(&mut x, &s);
    x.output(c);
    check_roundtrip("adder8", &x);
}

#[test]
fn multiplier_roundtrips() {
    let mut x = Xag::new();
    let a = input_word(&mut x, 4);
    let b = input_word(&mut x, 4);
    let p = multiply_array(&mut x, &a, &b);
    output_word(&mut x, &p);
    check_roundtrip("mult4", &x);
}

#[test]
fn comparator_roundtrips() {
    let mut x = Xag::new();
    let a = input_word(&mut x, 8);
    let b = input_word(&mut x, 8);
    let lt = less_than_unsigned(&mut x, &a, &b);
    x.output(lt);
    check_roundtrip("lt8", &x);
}

#[test]
fn aes_sbox_roundtrips() {
    let mut x = Xag::new();
    let bits: Vec<_> = (0..8).map(|_| x.input()).collect();
    let mut sbox = SboxBuilder::new();
    let out = sbox.build(&mut x, &bits);
    for s in out {
        x.output(s);
    }
    check_roundtrip("aes-sbox", &x);
}

#[test]
fn keccak_f25_roundtrips() {
    // 25 inputs: beyond the exhaustive range, checked with 256 × 64
    // sampled vectors (the documented Monte Carlo regime).
    check_roundtrip("keccak-f[25]", &keccak_f(1));
}
