//! Behavioural tests for the pass-pipeline API: flow construction, pass
//! ordering, per-pass statistics accumulation, and equivalence after
//! every composed flow.

use mc_repro::mc::{Cleanup, McRewrite, OptContext, Pipeline, SizeRewrite, XorReduce};
use mc_repro::network::{equiv_exhaustive, Signal, Xag};

type FlowFactory = fn() -> Pipeline;

fn textbook_full_adder() -> Xag {
    let mut xag = Xag::new();
    let (a, b, cin) = (xag.input(), xag.input(), xag.input());
    let ab = xag.and(a, b);
    let ac = xag.and(a, cin);
    let bc = xag.and(b, cin);
    let t = xag.xor(ab, ac);
    let cout = xag.xor(t, bc);
    let axb = xag.xor(a, b);
    let sum = xag.xor(axb, cin);
    xag.output(sum);
    xag.output(cout);
    xag
}

/// A chain of adders: enough XOR-heavy structure that rewriting inflates
/// the linear layers and XorReduce has something to compress.
fn adder_chain(bits: usize) -> Xag {
    use mc_repro::circuits::arith::{add_ripple, input_word, output_word};
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let c = input_word(&mut x, bits);
    let (s1, c1) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    let (s2, c2) = add_ripple(&mut x, &s1, &c, c1);
    output_word(&mut x, &s2);
    x.output(c2);
    x
}

#[test]
fn paper_flow_drives_full_adder_to_mc_one() {
    let mut xag = textbook_full_adder();
    let reference = xag.cleanup();
    let mut ctx = OptContext::new();
    let stats = Pipeline::paper_flow().run(&mut xag, &mut ctx);
    assert!(stats.converged);
    assert_eq!(xag.num_ands(), 1, "paper: full adder has MC 1");
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

#[test]
fn xor_reduce_after_mc_rewrite_shrinks_xors_without_touching_ands() {
    // Pass ordering matters: McRewrite only minimizes AND gates and
    // leaves the linear layers however they fall; a subsequent XorReduce
    // compresses them and must leave the AND count exactly where
    // McRewrite put it.
    //
    // y1 = a⊕b⊕c, y2 = a⊕b⊕d, y3 = a⊕b⊕e, each associated differently so
    // structural hashing shares no XOR gate (6 gates); Paar extraction
    // shares a⊕b (4 gates). The sums feed AND gates, which are already
    // MC-optimal, so McRewrite must not change them.
    let mut xag = Xag::new();
    let (a, b, c) = (xag.input(), xag.input(), xag.input());
    let (d, e) = (xag.input(), xag.input());
    let t1 = xag.xor(a, b);
    let y1 = xag.xor(t1, c);
    let t2 = xag.xor(a, d);
    let y2 = xag.xor(t2, b);
    let t3 = xag.xor(b, e);
    let y3 = xag.xor(t3, a);
    let g1 = xag.and(y1, y2);
    let g2 = xag.and(y2, y3);
    xag.output(g1);
    xag.output(g2);
    assert_eq!((xag.num_ands(), xag.num_xors()), (2, 6));
    let reference = xag.cleanup();
    let mut ctx = OptContext::new();

    let stats = Pipeline::new()
        .add(McRewrite::with_cut_size(4))
        .add(McRewrite::new())
        .add(XorReduce::new())
        .run_once(&mut xag, &mut ctx);

    for pass in &stats.passes {
        assert_eq!(
            pass.ands_after, pass.ands_before,
            "{}: AND count must stay at the MC optimum",
            pass.pass
        );
    }
    assert_eq!(xag.num_ands(), 2, "AND gates untouched");
    let xor_pass = stats.passes.last().expect("three passes ran");
    assert_eq!(xor_pass.pass, "xor-reduce");
    assert!(
        xor_pass.xors_after < xor_pass.xors_before,
        "XorReduce found nothing to compress ({} XORs)",
        xor_pass.xors_before
    );
    assert_eq!(
        xor_pass.rewrites_applied,
        xor_pass.xors_before - xor_pass.xors_after
    );
    assert_eq!(xag.num_xors(), 4, "a⊕b is shared across the three sums");
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}

#[test]
fn stats_accumulate_per_pass() {
    let mut xag = adder_chain(6);
    let mut ctx = OptContext::new();
    let flow = Pipeline::new()
        .add(McRewrite::with_cut_size(4))
        .add(McRewrite::new())
        .add(XorReduce::new())
        .add(Cleanup::new());
    let stats = flow.run(&mut xag, &mut ctx);

    let summary = stats.per_pass();
    // Every executed pass shows up, keyed by name, in first-run order.
    let names: Vec<&str> = summary.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names[0], "mc-rewrite<4>");
    assert!(names.contains(&"mc-rewrite<6>"));
    // Totals line up with the flat execution list.
    let total_runs: usize = summary.iter().map(|p| p.runs).sum();
    assert_eq!(total_runs, stats.passes.len());
    for p in &summary {
        let runs = stats.passes.iter().filter(|s| s.pass == p.name).count();
        assert_eq!(runs, p.runs, "{}", p.name);
        let saved: i64 = stats
            .passes
            .iter()
            .filter(|s| s.pass == p.name)
            .map(|s| s.ands_before as i64 - s.ands_after as i64)
            .sum();
        assert_eq!(saved, p.ands_saved, "{}", p.name);
    }
    // The MC passes carry the AND savings; the whole flow must have saved
    // some on a textbook adder chain.
    let mc_saved: i64 = summary
        .iter()
        .filter(|p| p.name.starts_with("mc-rewrite"))
        .map(|p| p.ands_saved)
        .sum();
    assert!(mc_saved > 0, "MC passes saved nothing");
}

#[test]
fn composed_flows_preserve_equivalence() {
    let build: Vec<(&str, FlowFactory)> = vec![
        ("paper_flow", Pipeline::paper_flow),
        ("compress", Pipeline::compress),
        ("rewrite+xor+cleanup", || {
            Pipeline::new()
                .add(McRewrite::new())
                .add(XorReduce::new())
                .add(Cleanup::new())
        }),
        ("size-first", || {
            Pipeline::new()
                .add(SizeRewrite::with_cut_size(4))
                .add(McRewrite::new())
                .add(XorReduce::new())
        }),
    ];
    let mut ctx = OptContext::new();
    for (name, make) in build {
        for source in [textbook_full_adder(), adder_chain(5)] {
            let reference = source.cleanup();
            let mut xag = source;
            let before = xag.num_ands();
            make().run(&mut xag, &mut ctx);
            assert!(xag.num_ands() <= before, "flow {name} raised the AND count");
            assert!(
                equiv_exhaustive(&reference, &xag.cleanup()),
                "flow {name} changed the function"
            );
        }
    }
}

#[test]
fn compress_reduces_total_gates_and_run_once_runs_each_pass_once() {
    let mut xag = adder_chain(6);
    let reference = xag.cleanup();
    let before = xag.num_gates();
    let mut ctx = OptContext::new();

    let flow = Pipeline::compress();
    let sweep = flow.run_once(&mut xag, &mut ctx);
    assert_eq!(sweep.passes.len(), flow.num_passes());
    assert!(!sweep.converged, "run_once never claims convergence");
    assert!(xag.num_gates() <= before);
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
}
