//! End-to-end tests of the `mc-cluster` router: boot real backends and a
//! real router on ephemeral ports, drive them with concurrent clients
//! over TCP, verify cache affinity through `cluster_stats`, and kill a
//! backend mid-stream to observe transparent failover.

use std::time::Duration;

use mc_cluster::{Router, RouterConfig};
use mc_serve::{Client, OptimizeRequest, ServeConfig, Server, ServerHandle};
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::{equiv_exhaustive, read_bristol, write_bristol, Xag};

fn bristol_text(xag: &Xag) -> String {
    let mut buf = Vec::new();
    write_bristol(xag, &mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("bristol is ASCII")
}

/// A router with health checking too lenient to ever mark a loaded CI
/// box's backend down spuriously — failover in these tests is driven by
/// first-hand dispatch failures, which need no health-loop timing.
fn lenient_router() -> mc_cluster::RouterHandle {
    Router::bind(RouterConfig {
        heartbeat_timeout: Duration::from_secs(60),
        miss_threshold: 100,
        health_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("bind router on an ephemeral port")
}

fn boot_backends(router_addr: &str, count: usize, workers: usize) -> Vec<ServerHandle> {
    (0..count)
        .map(|_| {
            Server::bind(ServeConfig {
                workers,
                join: Some(router_addr.to_string()),
                heartbeat_interval: Duration::from_millis(100),
                ..ServeConfig::default()
            })
            .expect("bind backend on an ephemeral port")
        })
        .collect()
}

fn wait_for_backends(client: &mut Client, up: usize) {
    for _ in 0..500 {
        let stats = client.cluster_stats().expect("cluster_stats");
        if stats.backends.iter().filter(|b| b.up).count() >= up {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{up} backend(s) never registered with the router");
}

/// The acceptance scenario: 2 backends + router over real TCP;
/// concurrent clients get equivalence-checked results; isomorphic
/// resubmission is answered from a warm backend cache, verified through
/// the `cluster_stats` affinity and cache counters.
#[test]
fn cluster_routes_concurrent_clients_with_cache_affinity() {
    const CLIENTS: u64 = 2;
    const JOBS_PER_CLIENT: u64 = 4;
    let router = lenient_router();
    let addr = router.local_addr();
    let backends = boot_backends(&addr.to_string(), 2, 2);
    let mut probe = Client::connect(addr).expect("connect probe");
    wait_for_backends(&mut probe, 2);

    // Cold phase: concurrent clients, client-disjoint seeds, every
    // result equivalence-checked against its input.
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let cfg = FuzzConfig::default();
                for j in 0..JOBS_PER_CLIENT {
                    let seed = 1000 * c + j;
                    let input = random_xag(&cfg, seed);
                    let result = client
                        .optimize(OptimizeRequest {
                            circuit: bristol_text(&input),
                            ..OptimizeRequest::default()
                        })
                        .expect("optimize through the router");
                    assert!(!result.cached, "seed {seed} is new to the cluster");
                    let back = read_bristol(result.netlist.as_bytes()).expect("parse response");
                    assert!(
                        equiv_exhaustive(&input, &back),
                        "returned netlist differs from input (seed {seed})"
                    );
                }
            });
        }
    });

    // Warm phase: resubmit every circuit over a fresh connection — the
    // router must hash each one onto the backend that computed it.
    let mut client = Client::connect(addr).expect("connect");
    let cfg = FuzzConfig::default();
    for c in 0..CLIENTS {
        for j in 0..JOBS_PER_CLIENT {
            let input = random_xag(&cfg, 1000 * c + j);
            let result = client
                .optimize(OptimizeRequest {
                    circuit: bristol_text(&input),
                    ..OptimizeRequest::default()
                })
                .expect("resubmit");
            assert!(
                result.cached,
                "isomorphic resubmission (client {c}, job {j}) must hit a warm backend"
            );
        }
    }

    let total = CLIENTS * JOBS_PER_CLIENT;
    let cstats = client.cluster_stats().expect("cluster_stats");
    assert_eq!(cstats.jobs_routed, 2 * total);
    assert_eq!(
        cstats.affinity_hits,
        2 * total,
        "an unloaded healthy cluster routes every job to its affine target"
    );
    assert_eq!(cstats.affinity_fallbacks, 0);
    assert_eq!(cstats.jobs_retried, 0);
    assert!((cstats.affinity_rate() - 1.0).abs() < 1e-12);
    // Cluster-wide: each unique circuit computed exactly once (8 misses),
    // each resubmission a hit on the same backend (8 hits) — the whole
    // point of affine routing.
    let misses: u64 = cstats.backends.iter().map(|b| b.cache_misses).sum();
    let hits: u64 = cstats.backends.iter().map(|b| b.cache_hits).sum();
    assert_eq!(misses, total, "every unique job computed exactly once");
    assert_eq!(hits, total, "every resubmission found a warm cache");
    // Both backends actually took part.
    for b in &cstats.backends {
        assert!(b.up);
        assert!(b.jobs_routed > 0, "backend {} never saw a job", b.id);
    }

    // The aggregated stats endpoint tells the same story to plain
    // `mc-client --stats`.
    let stats = client.stats().expect("aggregate stats");
    assert_eq!(stats.jobs_served, 2 * total);
    assert_eq!(stats.cache_hits, total);
    assert_eq!(stats.cache_misses, total);

    for b in backends {
        b.shutdown();
    }
    router.shutdown();
}

/// Kill one backend mid-stream: every accepted job still completes (the
/// router retries first-hand dispatch failures on the survivor), and the
/// registry reflects the loss.
#[test]
fn killing_a_backend_mid_stream_loses_no_job() {
    const BEFORE_KILL: u64 = 4;
    const AFTER_KILL: u64 = 10;
    let router = lenient_router();
    let addr = router.local_addr();
    let mut backends = boot_backends(&addr.to_string(), 2, 2);
    let mut client = Client::connect(addr).expect("connect");
    wait_for_backends(&mut client, 2);

    let cfg = FuzzConfig::default();
    let mut submit = |seed: u64| {
        let input = random_xag(&cfg, seed);
        let result = client
            .optimize(OptimizeRequest {
                circuit: bristol_text(&input),
                ..OptimizeRequest::default()
            })
            .unwrap_or_else(|e| panic!("job {seed} lost: {e}"));
        let back = read_bristol(result.netlist.as_bytes()).expect("parse response");
        assert!(equiv_exhaustive(&input, &back), "seed {seed}");
    };

    for seed in 0..BEFORE_KILL {
        submit(5000 + seed);
    }
    // Kill one backend. Its listener closes and its join agent stops;
    // the router only learns when a dispatch fails.
    backends.remove(0).shutdown();
    for seed in 0..AFTER_KILL {
        submit(6000 + seed);
    }

    let cstats = client.cluster_stats().expect("cluster_stats");
    assert_eq!(
        cstats.jobs_routed,
        BEFORE_KILL + AFTER_KILL,
        "every submitted job was answered"
    );
    assert!(
        cstats.jobs_retried >= 1,
        "at least one post-kill job must have been retried off the dead backend"
    );
    assert_eq!(
        cstats.backends.iter().filter(|b| b.up).count(),
        1,
        "the dead backend is marked down after the failed dispatch"
    );

    // The cluster still serves cache hits from the survivor.
    let input = random_xag(&cfg, 6000);
    let result = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&input),
            ..OptimizeRequest::default()
        })
        .expect("resubmit after failover");
    assert!(result.cached, "survivor's cache is warm for its own jobs");

    for b in backends {
        b.shutdown();
    }
    router.shutdown();
}

/// The FlowSpec acceptance scenario: a custom `mc(cut=6);xor;cleanup*`
/// flow round-trips through router → backend, equivalence-checks against
/// the input, and an isomorphic resubmission with a whitespace-variant
/// spec (and a `par{}`-wrapped one) is a cluster-wide cache hit — the
/// router and the backend agree bit for bit on the spec-inclusive key.
#[test]
fn custom_flow_spec_round_trips_with_cluster_wide_cache_affinity() {
    let router = lenient_router();
    let addr = router.local_addr();
    let backends = boot_backends(&addr.to_string(), 2, 2);
    let mut client = Client::connect(addr).expect("connect");
    wait_for_backends(&mut client, 2);

    let input = random_xag(&FuzzConfig::default(), 4711);
    let mut submit = |flow: &str| {
        client
            .optimize(OptimizeRequest {
                circuit: bristol_text(&input),
                flow: flow.parse().expect("valid spec"),
                ..OptimizeRequest::default()
            })
            .expect("optimize through the router")
    };

    let first = submit("mc(cut=6);xor;cleanup*");
    assert!(!first.cached, "cold custom flow computes");
    let back = read_bristol(first.netlist.as_bytes()).expect("parse response");
    assert!(
        equiv_exhaustive(&input, &back),
        "custom flow broke equivalence"
    );

    // Isomorphic resubmissions under spec variants that normalize to the
    // same canonical bytes must land on the warm backend.
    for variant in [
        " mc( cut = 6 ) ; xor ; cleanup * ",
        "par(threads=2){mc(cut=6);xor};cleanup*",
        "{mc(cut=6)};xor;cleanup*",
    ] {
        let hit = submit(variant);
        assert!(hit.cached, "{variant} must be a cluster-wide cache hit");
        assert_eq!(hit.job_id, first.job_id, "{variant}");
        assert_eq!(hit.netlist, first.netlist, "{variant}");
    }
    // A semantically different spec is a different job.
    let other = submit("mc(cut=4);xor;cleanup*");
    assert!(!other.cached, "a different cut knob is a different job");

    let mut probe = Client::connect(addr).expect("connect probe");
    let cstats = probe.cluster_stats().expect("cluster_stats");
    let misses: u64 = cstats.backends.iter().map(|b| b.cache_misses).sum();
    let hits: u64 = cstats.backends.iter().map(|b| b.cache_hits).sum();
    assert_eq!(misses, 2, "one miss per distinct normalized spec");
    assert_eq!(hits, 3, "every variant resubmission hit a warm cache");

    for b in backends {
        b.shutdown();
    }
    router.shutdown();
}

/// A malformed upload is refused at the router's edge and consumes no
/// backend dispatch; the connection keeps working.
#[test]
fn router_rejects_malformed_uploads_at_the_edge() {
    let router = lenient_router();
    let addr = router.local_addr();
    let backends = boot_backends(&addr.to_string(), 1, 1);
    let mut client = Client::connect(addr).expect("connect");
    wait_for_backends(&mut client, 1);

    let err = client
        .optimize(OptimizeRequest {
            circuit: "this is not a circuit".to_string(),
            ..OptimizeRequest::default()
        })
        .expect_err("garbage must be rejected");
    assert!(matches!(err, mc_serve::ClientError::Server(_)), "{err}");

    let cstats = client.cluster_stats().expect("cluster_stats");
    assert_eq!(cstats.jobs_routed, 0, "nothing was dispatched");
    assert_eq!(cstats.affinity_hits + cstats.affinity_fallbacks, 0);

    // The same connection still routes good jobs, and ping works on a
    // router exactly as on a backend.
    assert!(client.ping().is_ok());
    let input = random_xag(&FuzzConfig::default(), 9);
    let result = client
        .optimize(OptimizeRequest {
            circuit: bristol_text(&input),
            ..OptimizeRequest::default()
        })
        .expect("router still healthy");
    let back = read_bristol(result.netlist.as_bytes()).expect("parse");
    assert!(equiv_exhaustive(&input, &back));

    for b in backends {
        b.shutdown();
    }
    router.shutdown();
}
