//! The paper's running example (Figures 1 and 2, Examples 2.3 and 3.1):
//! a full adder has three AND gates in its textbook XAG, but its carry is
//! the majority function — affine-equivalent to a single AND — so the
//! whole circuit has multiplicative complexity 1.
//!
//! Run with: `cargo run --release --example full_adder`

use mc_repro::affine::AffineClassifier;
use mc_repro::mc::McOptimizer;
use mc_repro::network::{equiv_exhaustive, Xag};
use mc_repro::tt::{AffineOp, Tt};

fn main() {
    // Figure 1(a): the textbook full adder XAG.
    let mut xag = Xag::new();
    let (a, b, cin) = (xag.input(), xag.input(), xag.input());
    let ab = xag.and(a, b);
    let ac = xag.and(a, cin);
    let bc = xag.and(b, cin);
    let t = xag.xor(ab, ac);
    let cout = xag.xor(t, bc);
    let axb = xag.xor(a, b);
    let sum = xag.xor(axb, cin);
    xag.output(sum);
    xag.output(cout);
    println!(
        "Fig. 1: full adder with {} AND, {} XOR",
        xag.num_ands(),
        xag.num_xors()
    );

    // Figure 1(b): the cut of cout over {a, b, cin} computes the majority,
    // truth table 0xe8 as the paper states.
    let leaves = [a.node(), b.node(), cin.node()];
    let cut_tt = xag.cone_tt(cout.node(), &leaves).expect("valid cut");
    println!("cut function of cout: {:#04x} (majority)", cut_tt.bits());
    assert_eq!(cut_tt.bits(), 0xe8);

    // Example 2.3: the majority is affine-equivalent to AND (class 0x88).
    let mut classifier = AffineClassifier::new();
    let c = classifier.classify(cut_tt);
    println!(
        "affine representative: {:#04x}, reached through {} operations:",
        c.representative.bits(),
        c.ops.len()
    );
    for op in &c.ops {
        println!("  {op:?}");
    }
    assert_eq!(AffineOp::apply_all(cut_tt, &c.ops), c.representative);
    // The representative's class also contains the plain 2-input AND.
    let and_class = classifier.classify(Tt::from_bits(0x88, 3).flip_var(2));
    assert_eq!(and_class.representative, c.representative);

    // Example 3.1 / Figure 2: rewriting brings the adder to one AND gate.
    let reference = xag.cleanup();
    McOptimizer::new().run_to_convergence(&mut xag);
    println!(
        "Fig. 2: optimized full adder has {} AND, {} XOR",
        xag.num_ands(),
        xag.num_xors()
    );
    assert_eq!(xag.num_ands(), 1);
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    println!("multiplicative complexity of the full adder: 1 (paper's result)");
}
