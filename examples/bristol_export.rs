//! Interoperability demo: optimize a 32-bit comparator and export it as a
//! Bristol-fashion circuit (the MPC community's interchange format), then
//! read it back and confirm the round-trip.
//!
//! Run with: `cargo run --release --example bristol_export`

use mc_repro::circuits::arith::{input_word, less_than_unsigned};
use mc_repro::mc::McOptimizer;
use mc_repro::network::{equiv_random, read_bristol, write_bristol, Xag};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut xag = Xag::new();
    let a = input_word(&mut xag, 32);
    let b = input_word(&mut xag, 32);
    let lt = less_than_unsigned(&mut xag, &a, &b);
    xag.output(lt);
    println!(
        "comparator: {} AND gates before optimization",
        xag.num_ands()
    );

    McOptimizer::new().run_to_convergence(&mut xag);
    let xag = xag.cleanup();
    println!(
        "comparator: {} AND gates after optimization",
        xag.num_ands()
    );

    let mut text = Vec::new();
    write_bristol(&xag, &mut text)?;
    println!(
        "Bristol export: {} bytes, first lines:\n{}",
        text.len(),
        String::from_utf8_lossy(&text)
            .lines()
            .take(6)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let back = read_bristol(text.as_slice())?;
    assert!(equiv_random(&xag, &back, 99, 32));
    println!("round-trip: verified");
    Ok(())
}
