//! MPC cost model demo: optimize the SHA-256 message-schedule + round
//! logic and report the effect under free-XOR garbled circuits, where each
//! AND gate costs ciphertexts and XOR gates are free.
//!
//! Run with: `cargo run --release --example mpc_cost` (add `--fast` to run
//! a single rewriting round).

use mc_repro::circuits::hash::sha256;
use mc_repro::mc::{McOptimizer, RewriteParams};
use mc_repro::network::equiv_random;

/// Half-gates garbling: 2 ciphertexts (32 bytes) per AND, 0 per XOR.
fn garbled_bytes(ands: usize) -> usize {
    ands * 2 * 16
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("building the SHA-256 compression circuit…");
    let mut xag = sha256();
    let reference = xag.cleanup();
    let (a0, x0) = (xag.num_ands(), xag.num_xors());
    println!(
        "initial:   {a0} AND, {x0} XOR → {} bytes of garbled tables",
        garbled_bytes(a0)
    );

    let rounds = if fast { 1 } else { 3 };
    let mut opt = McOptimizer::with_params(RewriteParams {
        max_rounds: rounds,
        ..RewriteParams::default()
    });
    let stats = opt.run_to_convergence(&mut xag);
    let (a1, x1) = (xag.num_ands(), xag.num_xors());
    println!(
        "optimized: {a1} AND, {x1} XOR → {} bytes of garbled tables",
        garbled_bytes(a1)
    );
    println!(
        "saving: {:.1}% of the garbler's bandwidth ({} rounds, {:.1}s)",
        100.0 * (a0 - a1) as f64 / a0 as f64,
        stats.num_rounds(),
        stats.total_time().as_secs_f64()
    );

    assert!(equiv_random(&reference, &xag.cleanup(), 7, 32));
    println!("equivalence: verified on 2048 random vectors");
}
