//! Quickstart: build an 8-bit adder the textbook way, minimize its AND
//! gates, and verify the result.
//!
//! Run with: `cargo run --release --example quickstart`

use mc_repro::circuits::arith::{add_ripple, input_word, output_word};
use mc_repro::mc::{reduce_xors, McOptimizer};
use mc_repro::network::{equiv_exhaustive, Signal, Xag};

fn main() {
    // 1. Build: an 8-bit ripple-carry adder from textbook full adders
    //    (3 AND gates per bit).
    let mut xag = Xag::new();
    let a = input_word(&mut xag, 8);
    let b = input_word(&mut xag, 8);
    let (sum, carry) = add_ripple(&mut xag, &a, &b, Signal::CONST0);
    output_word(&mut xag, &sum);
    xag.output(carry);
    let reference = xag.cleanup();
    println!(
        "before: {} AND, {} XOR gates",
        xag.num_ands(),
        xag.num_xors()
    );

    // 2. Optimize: cut rewriting with affine classification (DAC'19).
    let mut opt = McOptimizer::new();
    let stats = opt.run_to_convergence(&mut xag);
    println!(
        "after:  {} AND, {} XOR gates",
        xag.num_ands(),
        xag.num_xors()
    );
    println!("{stats}");

    // 3. Verify: exhaustive equivalence check over all 2^16 inputs.
    assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    println!("equivalence: verified on all {} assignments", 1u64 << 16);

    // Boyar–Peralta proved an n-bit adder needs exactly n AND gates.
    assert_eq!(xag.num_ands(), 8);
    println!("reached the provably optimal 8 AND gates (1 per bit)");

    // 4. Companion pass: shrink the XOR overhead the rewriting introduced
    //    (free in MPC/FHE, but nice for circuit size).
    let tidy = reduce_xors(&xag);
    println!(
        "XOR cleanup: {} → {} XOR gates (ANDs unchanged: {})",
        xag.num_xors(),
        tidy.num_xors(),
        tidy.num_ands()
    );
    assert!(equiv_exhaustive(&reference, &tidy));
}
